// Package dse implements the design-space explorer the thesis leaves to
// future work (§4.11: "A design space explorer would benefit the performance
// of work by maximizing overall network performance and resource utilization
// rather than the performance of individual layers. We leave resource
// modeling and exploration for a DSE to future work.").
//
// Given a lowered network and a board, the explorer enumerates tiling
// configurations that satisfy the thesis's factor-selection rules (§4.11):
//
//  1. the unroll width must not exceed what external memory bandwidth can
//     feed at the design clock;
//  2. factors must evenly divide every layer's extent they tile (no
//     epilogues);
//  3. the design must fit — and, beyond the thesis's list, must route.
//
// Candidates are ranked by the modeled end-to-end forward-pass time of the
// folded deployment, using exactly the same AOC model the evaluation uses,
// so the search optimizes whole-network throughput rather than a single
// kernel's.
//
// # Parallel architecture
//
// Exploration is split into four phases:
//
//  1. Enumeration (sequential, cheap): the divisor-respecting tiling space is
//     generated in a deterministic preference order (largest total unroll
//     first, balanced channel factors breaking ties) and pre-pruned by the
//     §4.11 bandwidth rule.
//  2. Probe (parallel): each 1x1 tiling group is routability-screened by
//     compiling its dominant kernel alone — a 1x1 kernel that cannot route
//     by itself can never route inside the full design.
//  3. Slot assignment (sequential, cheap): surviving (1x1, 3x3) pairs are
//     assigned evaluation slots in enumeration order until MaxCandidates
//     slots are reserved. Reserving slots *before* evaluation makes the
//     Result.Evaluated accounting exact under concurrency — the cap can
//     never be overshot by racing workers.
//  4. Evaluation (parallel): each reserved slot compiles the full folded
//     deployment and models one forward pass. Workers pull slot indices
//     from an atomic counter; results land at their slot index.
//
// Determinism: the final ranking is produced by a stable sort over the slot
// array, so equal-time candidates keep their enumeration order and the
// Result is identical for any worker count — Explore with Workers: 16
// returns byte-identical candidates to Workers: 1. Kernel compilations are
// memoized in an aoc.CompileCache (identical ConvSched/signature pairs recur
// across candidates); the singleflight cache makes even the hit/miss
// counters reported in Result independent of scheduling.
//
// Cancellation: Options.Ctx bounds search wall-time. On cancellation the
// explorer stops dispatching work promptly and returns a well-formed partial
// Result (Canceled=true) holding every candidate fully evaluated before the
// deadline.
package dse

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/ir"
	"repro/internal/relay"
	"repro/internal/topi"
	"repro/internal/trace"
)

// Options configures an exploration run. The zero value explores with
// GOMAXPROCS workers, a 64-candidate budget, no deadline and a fresh
// compile cache.
type Options struct {
	// Workers bounds evaluation concurrency; <= 0 means runtime.GOMAXPROCS.
	Workers int
	// MaxCandidates bounds the number of fully compiled designs (the
	// expensive step); <= 0 means 64.
	MaxCandidates int
	// Ctx cancels or bounds the search; nil means context.Background().
	Ctx context.Context
	// Cache memoizes kernel compilations. Nil allocates a private cache for
	// the run; pass a shared cache to reuse compilations across runs on the
	// same board.
	Cache *aoc.CompileCache
	// NoCache disables compile memoization entirely (benchmarks/ablations).
	NoCache bool
	// Metrics receives the run's observability counters and gauges
	// (evaluated/pruned counts, cache hit ratio, candidates/sec, per-kernel
	// compile-cache lookups); nil disables publication.
	Metrics *trace.Registry
	// Trace receives one span per evaluated candidate on a modeled-time axis
	// (cumulative forward-pass time in slot order — deterministic, unlike the
	// wall clock); nil disables it.
	Trace *trace.Collector
}

// Candidate is one evaluated configuration.
type Candidate struct {
	Config host.FoldedConfig
	// PW is the 1x1-convolution tiling (the dominant knob).
	PW topi.ConvSched
	// Conv33 is the 3x3-convolution tiling when the network has general 3x3
	// layers beyond the stem.
	Conv33 topi.ConvSched

	Synthesizable bool
	FailReason    string
	FmaxMHz       float64
	DSPs          int
	LogicFrac     float64
	// TimeUS is the modeled forward-pass time (sum of kernel times; the
	// ranking objective).
	TimeUS float64
}

// Result is the explorer's outcome.
type Result struct {
	Board      *fpga.Board
	Net        string
	Candidates []Candidate // sorted: synthesizable first, fastest first
	// Evaluated is the number of fully compiled designs; it always equals
	// len(Candidates), even under concurrency or cancellation.
	Evaluated int
	Pruned    int // rejected before full compilation (divisibility/bandwidth/probe)
	// PrunedBandwidth/PrunedRoute split Pruned by cause: the §4.11 bandwidth
	// rule (phase 1, and infeasible mutations in guided mode) vs the
	// routability probe (phase 2).
	PrunedBandwidth int
	PrunedRoute     int
	// Canceled reports that Options.Ctx expired before the search finished;
	// the Result then holds the candidates evaluated up to that point.
	Canceled bool
	// CacheHits/CacheMisses are this run's kernel-compile memoization
	// counters (deltas when a shared cache is passed in).
	CacheHits   int64
	CacheMisses int64
}

// CacheHitRate returns the fraction of kernel compilations served from the
// memoization cache during this run.
func (r *Result) CacheHitRate() float64 {
	if r.CacheHits+r.CacheMisses == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.CacheHits+r.CacheMisses)
}

// Best returns the fastest synthesizable candidate.
func (r *Result) Best() (*Candidate, error) {
	for i := range r.Candidates {
		if r.Candidates[i].Synthesizable {
			return &r.Candidates[i], nil
		}
	}
	if r.Canceled {
		return nil, fmt.Errorf("dse: search for %s on %s cancelled before any synthesizable configuration was evaluated", r.Net, r.Board.Name)
	}
	return nil, fmt.Errorf("dse: no synthesizable configuration for %s on %s", r.Net, r.Board.Name)
}

// layerFacts summarizes the constraints the network's layers impose.
type layerFacts struct {
	// common divisors per tiled dimension across all layers of a group.
	pwW2, pwC2, pwC1 int
	c33W2, c33C1     int
	hasPW, has33     bool
	// strided 1x1 projections (ResNet shortcuts).
	projC1   int
	hasProj  bool
	dwW2     int
	hasDW    bool
	denseN   int
	hasDense bool
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func gatherFacts(layers []*relay.Layer) layerFacts {
	f := layerFacts{}
	acc := func(cur *int, v int) {
		if *cur == 0 {
			*cur = v
		} else {
			*cur = gcd(*cur, v)
		}
	}
	for _, l := range layers {
		switch l.Kind {
		case relay.KConv:
			w2 := l.OutShape[2]
			switch {
			case l.F == 1 && l.S == 1:
				f.hasPW = true
				acc(&f.pwW2, w2)
				acc(&f.pwC2, l.OutShape[0])
				acc(&f.pwC1, l.InShape[0])
			case l.F == 1:
				f.hasProj = true
				acc(&f.projC1, l.InShape[0])
			case l.F == 3:
				f.has33 = true
				acc(&f.c33W2, w2)
				acc(&f.c33C1, l.InShape[0])
			}
		case relay.KDepthwise:
			f.hasDW = true
			acc(&f.dwW2, l.OutShape[2])
		case relay.KDense:
			f.hasDense = true
			acc(&f.denseN, l.InShape[0])
		}
	}
	return f
}

// divisorsOf returns the divisors of n not exceeding cap, ascending.
func divisorsOf(n, cap int) []int {
	var out []int
	for d := 1; d <= n && d <= cap; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// pwCfg is one 1x1-convolution tiling group from the enumeration phase.
type pwCfg struct{ w2, c2, c1 int }

// Explore enumerates and ranks configurations for a network on a board with
// default options. maxCandidates bounds the number of compiled designs (the
// expensive step); enumeration order prefers balanced tilings first.
func Explore(layers []*relay.Layer, net string, board *fpga.Board, maxCandidates int) (*Result, error) {
	return ExploreWith(layers, net, board, Options{MaxCandidates: maxCandidates})
}

// ExploreWith enumerates and ranks configurations under the given Options.
// See the package comment for the phase structure and the determinism and
// cancellation guarantees.
func ExploreWith(layers []*relay.Layer, net string, board *fpga.Board, opts Options) (*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxCandidates := opts.MaxCandidates
	if maxCandidates <= 0 {
		maxCandidates = 64
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cache := opts.Cache
	if cache == nil && !opts.NoCache {
		cache = aoc.NewCompileCache()
	}
	if opts.Metrics != nil {
		cache.SetObserver(trace.CacheObserver{Reg: opts.Metrics})
	}
	hits0, misses0 := cache.Stats()
	t0 := time.Now()

	facts := gatherFacts(layers)
	res := &Result{Board: board, Net: net}
	defer func() {
		hits1, misses1 := cache.Stats()
		res.CacheHits = hits1 - hits0
		res.CacheMisses = misses1 - misses0
		if m := opts.Metrics; m != nil {
			m.Counter("dse.evaluated").Add(int64(res.Evaluated))
			m.Counter("dse.pruned").Add(int64(res.Pruned))
			m.Counter("dse.pruned_bandwidth").Add(int64(res.PrunedBandwidth))
			m.Counter("dse.pruned_route").Add(int64(res.PrunedRoute))
			m.Counter("dse.cache_hits").Add(res.CacheHits)
			m.Counter("dse.cache_misses").Add(res.CacheMisses)
			m.Gauge("dse.cache_hit_ratio").Set(res.CacheHitRate())
			// Wall-clock throughput: meaningful operationally, deliberately
			// excluded from any golden comparison.
			if el := time.Since(t0).Seconds(); el > 0 {
				m.Gauge("dse.candidates_per_sec").Set(float64(res.Evaluated) / el)
			}
		}
	}()

	// --- Phase 1: enumeration (sequential, deterministic order) ---

	// Rule 1 (§4.11): the widest memory access must not exceed the memory
	// system's bytes/cycle at a conservative clock.
	maxFloats := int(board.BytesPerCycleAt(board.BaseFmaxMHz*0.7) / 4)

	var pws []pwCfg
	if facts.hasPW {
		for _, w2 := range divisorsOf(facts.pwW2, 14) {
			for _, c2 := range divisorsOf(facts.pwC2, 64) {
				for _, c1 := range divisorsOf(facts.pwC1, 32) {
					if w2*c1 > 4*maxFloats || w2 < 2 {
						res.Pruned++
						res.PrunedBandwidth++
						continue
					}
					pws = append(pws, pwCfg{w2, c2, c1})
				}
			}
		}
	} else {
		pws = []pwCfg{{1, 1, 1}}
	}
	// Prefer larger total unroll first (throughput), break ties toward
	// balanced C2/C1.
	sort.Slice(pws, func(i, j int) bool {
		vi := pws[i].w2 * pws[i].c2 * pws[i].c1
		vj := pws[j].w2 * pws[j].c2 * pws[j].c1
		if vi != vj {
			return vi > vj
		}
		di := abs(pws[i].c2 - pws[i].c1)
		dj := abs(pws[j].c2 - pws[j].c1)
		return di < dj
	})

	var c33s []topi.ConvSched
	if facts.has33 {
		for _, w2 := range divisorsOf(facts.c33W2, 7) {
			for _, c1 := range divisorsOf(facts.c33C1, 16) {
				if w2*c1*9 > 16*maxFloats {
					res.Pruned++
					res.PrunedBandwidth++
					continue
				}
				c33s = append(c33s, topi.OptSched(w2, 1, c1))
			}
		}
		sort.Slice(c33s, func(i, j int) bool {
			return c33s[i].W2vec*c33s[i].C1vec > c33s[j].W2vec*c33s[j].C1vec
		})
		if len(c33s) > 4 {
			c33s = c33s[:4] // the 3x3 knob is secondary; keep the frontier
		}
	} else {
		c33s = []topi.ConvSched{topi.OptSched(1, 1, 1)}
	}

	denseVec := 1
	if facts.hasDense {
		dv := divisorsOf(facts.denseN, 32)
		denseVec = dv[len(dv)-1]
	}
	dwVec := 1
	if facts.hasDW {
		dw := divisorsOf(facts.dwW2, 7)
		dwVec = dw[len(dw)-1]
	}

	// --- Phase 2: routability probes (parallel) ---
	// Cheap feasibility pre-check per 1x1 group: the dominant kernel
	// compiled alone. A 1x1 kernel that cannot route by itself can never
	// route inside the full design, so its whole candidate row is skipped
	// before any expensive whole-network build.
	pass := make([]bool, len(pws))
	prunedByProbe := make([]bool, len(pws))
	var probeDone []bool
	if facts.hasPW {
		var errs []error
		probeDone, errs = runJobs(ctx, len(pws), workers, func(i int) error {
			pw := pws[i]
			probe, err := topi.ConvParam("dse_probe", 1, 1,
				topi.OptSched(pw.w2, pw.c2, pw.c1), true, true, false, true)
			if err != nil {
				prunedByProbe[i] = true
				return nil
			}
			pd, err := aoc.CompileCached("dse-probe", []*ir.Kernel{probe.Op.Kernel}, board, aoc.DefaultOptions, cache)
			if err != nil {
				return err
			}
			if !pd.Synthesizable() {
				prunedByProbe[i] = true
				return nil
			}
			pass[i] = true
			return nil
		})
		for i, err := range errs {
			if probeDone[i] && err != nil {
				return nil, err
			}
		}
		for i := range pws {
			if probeDone[i] && prunedByProbe[i] {
				res.Pruned++
				res.PrunedRoute++
			}
		}
	} else {
		probeDone = make([]bool, len(pws))
		for i := range pws {
			probeDone[i], pass[i] = true, true
		}
	}

	// --- Phase 3: slot assignment (sequential, exact accounting) ---
	// Every reserved slot corresponds to exactly one full evaluation, so the
	// MaxCandidates cap is enforced before any worker starts: concurrent
	// evaluation cannot overshoot it.
	type slot struct{ pwIdx, c33Idx int }
	var slots []slot
assign:
	for i := range pws {
		if !probeDone[i] || !pass[i] {
			continue
		}
		for j := range c33s {
			if len(slots) >= maxCandidates {
				break assign
			}
			slots = append(slots, slot{i, j})
		}
	}

	// --- Phase 4: evaluation (parallel) ---
	cands := make([]*Candidate, len(slots))
	evalDone, evalErrs := runJobs(ctx, len(slots), workers, func(i int) error {
		pw := pws[slots[i].pwIdx]
		c33 := c33s[slots[i].c33Idx]
		cfg := buildConfig(layers, facts, pw.w2, pw.c2, pw.c1, c33, dwVec, denseVec)
		cand, err := evaluate(layers, cfg, board, cache)
		if err != nil {
			return err
		}
		cand.PW = topi.OptSched(pw.w2, pw.c2, pw.c1)
		cand.Conv33 = c33
		cands[i] = cand
		return nil
	})
	for i, err := range evalErrs {
		if evalDone[i] && err != nil {
			return nil, err
		}
	}

	// Collect completed slots in enumeration order; the stable sort then
	// breaks time ties by enumeration index for any worker count.
	for i, c := range cands {
		if evalDone[i] && c != nil {
			res.Candidates = append(res.Candidates, *c)
			res.Evaluated++
		}
	}
	res.Canceled = ctx.Err() != nil

	// Per-candidate observability: one span per evaluated slot on a modeled-
	// time axis (cumulative forward-pass estimates in slot order), which is
	// deterministic for any worker count, unlike evaluation wall-time.
	if opts.Trace != nil || opts.Metrics != nil {
		var cursor float64
		for i, c := range cands {
			if !evalDone[i] || c == nil {
				continue
			}
			opts.Metrics.Histogram("dse.candidate_time_us").Observe(c.TimeUS)
			dur := c.TimeUS
			if dur <= 0 {
				dur = 1 // unsynthesizable candidates get a visible sliver
			}
			args := map[string]string{"synthesizable": fmt.Sprintf("%v", c.Synthesizable)}
			if c.FailReason != "" {
				args["fail"] = c.FailReason
			}
			opts.Trace.Add(trace.Span{Proc: "host", Track: "dse candidates",
				Name: fmt.Sprintf("candidate %d", i), Cat: "candidate",
				StartUS: cursor, DurUS: dur, Args: args})
			cursor += dur
		}
	}

	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		if a.Synthesizable != b.Synthesizable {
			return a.Synthesizable
		}
		if !a.Synthesizable {
			return false
		}
		return a.TimeUS < b.TimeUS
	})
	return res, nil
}

// runJobs executes fn(i) for every i in [0, n) on up to `workers` goroutines.
// Workers reserve indices by atomically incrementing a shared counter, so
// each index runs exactly once; when ctx is done, workers stop reserving new
// indices and drain promptly. done[i] reports whether fn(i) ran to
// completion; errs[i] holds its error. Callers scan errs in index order so
// the reported error is deterministic regardless of scheduling.
func runJobs(ctx context.Context, n, workers int, fn func(i int) error) (done []bool, errs []error) {
	done = make([]bool, n)
	errs = make([]error, n)
	if n == 0 {
		return done, errs
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
				done[i] = true
			}
		}()
	}
	wg.Wait()
	return done, errs
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// buildConfig assembles a FoldedConfig covering every conv signature the
// network uses. Strided 1x1 projections get their own channel unroll (they
// are small in FLOPs but crippling at 1 MAC/cycle).
func buildConfig(layers []*relay.Layer, facts layerFacts, pwW2, pwC2, pwC1 int, c33 topi.ConvSched, dwVec, denseVec int) host.FoldedConfig {
	conv := map[string]topi.ConvSched{}
	dw := map[string]int{}
	projC1 := 1
	if facts.hasProj {
		pd := divisorsOf(facts.projC1, 8)
		projC1 = pd[len(pd)-1]
	}
	for _, l := range layers {
		switch l.Kind {
		case relay.KConv:
			sig := convSigLocal(l)
			switch {
			case l.F == 1 && l.S == 1:
				conv[sig] = topi.OptSched(pwW2, pwC2, pwC1)
			case l.F == 1:
				conv[sig] = topi.OptSched(1, 1, projC1)
			case l.F == 3:
				conv[sig] = c33
			default:
				conv[sig] = topi.OptSched(1, 1, 1)
			}
		case relay.KDepthwise:
			dw[fmt.Sprintf("dw%dx%ds%d", l.F, l.F, l.S)] = dwVec
		}
	}
	return host.FoldedConfig{Conv: conv, DWVec: dw, DenseVec: denseVec, Workaround: true}
}

// convSigLocal mirrors host's signature naming for conv groups.
func convSigLocal(l *relay.Layer) string {
	sig := fmt.Sprintf("conv%dx%ds%d", l.F, l.F, l.S)
	if l.HasSkip {
		sig += "_res"
	}
	if l.Relu6 {
		sig += "_r6"
	} else if !l.Relu {
		sig += "_lin"
	}
	return sig
}

// evaluate compiles the configuration and models one forward pass.
func evaluate(layers []*relay.Layer, cfg host.FoldedConfig, board *fpga.Board, cache *aoc.CompileCache) (*Candidate, error) {
	dep, err := host.BuildFoldedCached(layers, cfg, board, aoc.DefaultOptions, cache)
	if err != nil {
		// Divisibility misses surface as build errors: an unsynthesizable
		// candidate, not an explorer failure.
		return &Candidate{Config: cfg, FailReason: "bind: " + err.Error()}, nil
	}
	ef := dep.Design.Features()
	c := &Candidate{Config: cfg, FmaxMHz: ef.FmaxMHz, DSPs: ef.DSPs, LogicFrac: ef.LogicFrac}
	if !dep.Design.Synthesizable() {
		c.FailReason = dep.Design.FailReason
		if !dep.Design.Routed {
			c.FailReason = "routing"
		}
		return c, nil
	}
	c.Synthesizable = true
	us, err := dep.ForwardTimeUS()
	if err != nil {
		return nil, err
	}
	c.TimeUS = us
	return c, nil
}
