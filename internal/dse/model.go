package dse

// The learned cost model for guided search (the TVM recipe): a ridge
// regression over schedule features, trained online from every completed
// full evaluation during the run, ranks mutation batches so the expensive
// evaluator (full aoc compile + fit + fmax + forward-pass model) is paid
// only for the most promising candidates. A second ridge head predicts
// synthesizability so the score can penalize regions that keep failing fit
// or routing.
//
// Determinism contract: everything here is a pure function of the training
// rows in insertion order. Only IEEE-exact float operations are used
// (+, -, ×, ÷ and math.Sqrt, all correctly rounded per IEEE 754 and
// bit-identical across conforming platforms); no math.Log/Exp/Pow, whose
// platform-specific implementations may differ in the last ulp and would
// break the byte-identical Result guarantee across architectures.

import (
	"math"
	"repro/internal/fpga"
)

// splitmix64 is a tiny deterministic PRNG (integer-only, platform-exact).
// Every stochastic choice of the guided explorer draws from one sequential
// instance in the coordinator goroutine, so the draw sequence — and hence
// the whole search trajectory — depends only on the seed, never on worker
// scheduling.
type splitmix64 struct{ state uint64 }

func newRNG(seed int64) *splitmix64 {
	return &splitmix64{state: uint64(seed)}
}

func (r *splitmix64) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). The modulo bias is irrelevant here — the
// only requirement is determinism.
func (r *splitmix64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float returns a value in [0, 1) with 53 uniform bits; the final division
// by a power of two is exact.
func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// featurize renders the model's feature vector for a point: a bias term,
// each axis value normalized by its axis maximum (divisor slack), a
// cycles-per-group proxy (group MACs over the group's total unroll — the
// dominant first-order term of the timing model), the §4.11 bandwidth
// pressure ratios, and a DSP pressure proxy. The vector length is fixed per
// (space, board) pair.
func featurize(s *Space, board *fpga.Board, p Point) []float64 {
	f := make([]float64, 0, len(s.Axes)+10)
	f = append(f, 1) // bias

	for i := range s.Axes {
		f = append(f, float64(s.Axes[i].Values[p[i]])/float64(s.Axes[i].Max()))
	}

	const macScale = 1e6
	totalUnroll := 0.0
	if s.hasPW {
		u := float64(s.value(p, axPWW2, 1) * s.value(p, axPWC2, 1) * s.value(p, axPWC1, 1))
		f = append(f, s.pwMACs/u/macScale)
		totalUnroll += u
	}
	if s.has33 {
		u := float64(s.value(p, axC33W2, 1) * s.value(p, axC33C2, 1) * s.value(p, axC33C1, 1))
		if s.value(p, axC33FF, 1) == 1 {
			u *= 9
		}
		f = append(f, s.c33MACs/u/macScale)
		totalUnroll += u
	}
	if s.hasProj {
		u := float64(s.value(p, axProjC1, 1))
		f = append(f, s.projMACs/u/macScale)
		totalUnroll += u
	}
	if s.hasDW {
		u := float64(s.value(p, axDWW2, 1))
		f = append(f, s.dwMACs/u/macScale)
		totalUnroll += u
	}
	for _, sig := range s.denseSigs {
		u := float64(s.value(p, densePref+sig+".kvec", 1))
		f = append(f, s.denseMACs[sig]/u/macScale)
		totalUnroll += u
	}

	maxFloats := float64(int(board.BytesPerCycleAt(board.BaseFmaxMHz*0.7) / 4))
	if s.hasPW {
		f = append(f, float64(s.value(p, axPWW2, 1)*s.value(p, axPWC1, 1))/(4*maxFloats))
	}
	if s.has33 {
		f = append(f, float64(s.value(p, axC33W2, 1)*s.value(p, axC33C1, 1)*9)/(16*maxFloats))
	}
	f = append(f, totalUnroll/float64(board.Usable().DSPs))
	return f
}

// heuristicScore ranks a point before the model has any training data: the
// sum of the per-group cycles proxies (MACs / unroll), i.e. the zeroth-order
// timing model. Lower is better.
func heuristicScore(s *Space, board *fpga.Board, p Point) float64 {
	f := featurize(s, board, p)
	// Cycles proxies sit after the bias and the per-axis slack features and
	// before the two pressure ratios and the DSP proxy.
	var sum float64
	for _, v := range f[1+len(s.Axes) : len(f)-s.pressureFeatures()-1] {
		sum += v
	}
	return sum
}

// pressureFeatures counts the bandwidth-pressure entries in the vector.
func (s *Space) pressureFeatures() int {
	n := 0
	if s.hasPW {
		n++
	}
	if s.has33 {
		n++
	}
	return n
}

// costModel is the online-trained ranking model. Not safe for concurrent
// use; the coordinator owns it and workers never touch it.
type costModel struct {
	space *Space
	board *fpga.Board

	feats   [][]float64 // training rows, insertion order
	times   []float64   // TimeUS label (0 for unsynthesizable rows)
	feas    []float64   // 1 synthesizable, 0 not
	maxTime float64

	wTime []float64 // nil until first fit with a synthesizable row
	wFeas []float64
}

func newCostModel(space *Space, board *fpga.Board) *costModel {
	return &costModel{space: space, board: board}
}

// warmStart installs transferred weights so the very first generations rank
// with another board's learned model instead of the heuristic.
func (m *costModel) warmStart(wTime, wFeas []float64, maxTime float64) {
	n := len(featurize(m.space, m.board, make(Point, len(m.space.Axes))))
	if len(wTime) == n {
		m.wTime = append([]float64(nil), wTime...)
	}
	if len(wFeas) == n {
		m.wFeas = append([]float64(nil), wFeas...)
	}
	if maxTime > m.maxTime {
		m.maxTime = maxTime
	}
}

// observe adds one completed full evaluation to the training set.
func (m *costModel) observe(p Point, c *Candidate) {
	m.feats = append(m.feats, featurize(m.space, m.board, p))
	if c.Synthesizable {
		m.times = append(m.times, c.TimeUS)
		m.feas = append(m.feas, 1)
		if c.TimeUS > m.maxTime {
			m.maxTime = c.TimeUS
		}
	} else {
		m.times = append(m.times, 0)
		m.feas = append(m.feas, 0)
	}
}

// fit retrains both heads on all observations. Ridge keeps the normal
// equations solvable for any sample count; rows enter in insertion order so
// the sums — and therefore the weights — are bit-identical for a given
// evaluation history regardless of worker count.
func (m *costModel) fit() {
	if len(m.feats) < 4 {
		return
	}
	// The time head trains only on synthesizable rows (unsynthesizable rows
	// have no meaningful latency); the feasibility head trains on all rows.
	var tX [][]float64
	var tY []float64
	for i, row := range m.feats {
		if m.feas[i] == 1 {
			tX = append(tX, row)
			tY = append(tY, m.times[i])
		}
	}
	if len(tX) >= 4 {
		m.wTime = ridgeFitStd(tX, tY, 0.1)
	}
	m.wFeas = ridgeFitStd(m.feats, m.feas, 0.1)
}

// ridgeFitStd standardizes features and labels (zero mean, unit variance,
// fixed-order sums), fits ridge in the standardized space — so λ has the
// same meaning whether labels are 100µs or 100ms — and folds the scaling
// back into raw-space weights, with the intercept absorbed into the bias
// feature's weight (index 0, constant 1).
func ridgeFitStd(X [][]float64, y []float64, lambda float64) []float64 {
	n := len(X)
	d := len(X[0])
	fm := make([]float64, d)
	fs := make([]float64, d)
	for j := 0; j < d; j++ {
		var sum float64
		for k := 0; k < n; k++ {
			sum += X[k][j]
		}
		fm[j] = sum / float64(n)
		var v float64
		for k := 0; k < n; k++ {
			dx := X[k][j] - fm[j]
			v += dx * dx
		}
		fs[j] = math.Sqrt(v / float64(n))
		if fs[j] == 0 {
			fs[j] = 1
		}
	}
	var ysum float64
	for k := 0; k < n; k++ {
		ysum += y[k]
	}
	ym := ysum / float64(n)
	var yv float64
	for k := 0; k < n; k++ {
		dy := y[k] - ym
		yv += dy * dy
	}
	ys := math.Sqrt(yv / float64(n))
	if ys == 0 {
		ys = 1
	}
	sx := make([][]float64, n)
	sy := make([]float64, n)
	for k := 0; k < n; k++ {
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			row[j] = (X[k][j] - fm[j]) / fs[j]
		}
		sx[k] = row
		sy[k] = (y[k] - ym) / ys
	}
	ws := ridgeFit(sx, sy, lambda)
	// Raw-space weights: pred = ym + ys·Σ ws[j]·(x[j]-fm[j])/fs[j].
	w := make([]float64, d)
	intercept := ym
	for j := 0; j < d; j++ {
		w[j] = ys * ws[j] / fs[j]
		intercept -= w[j] * fm[j]
	}
	w[0] += intercept // feature 0 is the constant bias term
	return w
}

// score predicts the ranking objective for a point: predicted forward-pass
// time plus a large penalty scaled by the predicted probability of not
// synthesizing. Falls back to the heuristic until the time head is fitted.
// Lower is better.
func (m *costModel) score(p Point) float64 {
	if m.wTime == nil {
		return heuristicScore(m.space, m.board, p)
	}
	f := featurize(m.space, m.board, p)
	t := dot(m.wTime, f)
	if m.wFeas != nil {
		pf := dot(m.wFeas, f)
		if pf < 0 {
			pf = 0
		} else if pf > 1 {
			pf = 1
		}
		penalty := 10 * m.maxTime
		if penalty == 0 {
			penalty = 1e6
		}
		t += penalty * (1 - pf)
	}
	return t
}

func dot(w, f []float64) float64 {
	var s float64
	for i := range w {
		s += w[i] * f[i]
	}
	return s
}

// ridgeFit solves (XᵀX + λnI)w = Xᵀy by Gaussian elimination with partial
// pivoting. Deterministic: fixed summation and elimination order, exact
// comparisons for pivot selection.
func ridgeFit(X [][]float64, y []float64, lambda float64) []float64 {
	n := len(X)
	d := len(X[0])
	A := make([][]float64, d)
	b := make([]float64, d)
	for i := 0; i < d; i++ {
		A[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += X[k][i] * X[k][j]
			}
			A[i][j] = s
		}
		A[i][i] += lambda * float64(n)
		var s float64
		for k := 0; k < n; k++ {
			s += X[k][i] * y[k]
		}
		b[i] = s
	}
	// Forward elimination with partial pivoting.
	for col := 0; col < d; col++ {
		piv := col
		best := A[col][col]
		if best < 0 {
			best = -best
		}
		for r := col + 1; r < d; r++ {
			v := A[r][col]
			if v < 0 {
				v = -v
			}
			if v > best {
				best, piv = v, r
			}
		}
		if best == 0 {
			continue // column already eliminated; ridge term makes this rare
		}
		A[col], A[piv] = A[piv], A[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < d; r++ {
			m := A[r][col] / A[col][col]
			if m == 0 {
				continue
			}
			for c := col; c < d; c++ {
				A[r][c] -= m * A[col][c]
			}
			b[r] -= m * b[col]
		}
	}
	// Back substitution.
	w := make([]float64, d)
	for i := d - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < d; j++ {
			s -= A[i][j] * w[j]
		}
		if A[i][i] != 0 {
			w[i] = s / A[i][i]
		}
	}
	return w
}
