package dse

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/topi"
)

// handPickedS10SX is the thesis's Table 6.7 configuration for the S10SX
// (duplicated from bench.MobileNetConfig to avoid an import cycle).
var handPickedS10SX = host.FoldedConfig{
	Conv: map[string]topi.ConvSched{
		"conv1x1s1": topi.OptSched(7, 16, 4),
		"conv3x3s2": topi.OptSched(1, 1, 3),
	},
	DWVec:      map[string]int{"dw3x3s1": 7, "dw3x3s2": 7},
	DenseVec:   32,
	Workaround: true,
}

func mobilenetLayers(t *testing.T) []*relay.Layer {
	t.Helper()
	layers, err := relay.Lower(nn.MobileNetV1())
	if err != nil {
		t.Fatal(err)
	}
	return layers
}

func TestDivisorsOf(t *testing.T) {
	got := divisorsOf(12, 6)
	want := []int{1, 2, 3, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("divisors = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divisors = %v", got)
		}
	}
}

func TestGatherFactsMobileNet(t *testing.T) {
	f := gatherFacts(mobilenetLayers(t))
	if !f.hasPW || !f.hasDW || !f.hasDense || !f.has33 {
		t.Fatalf("facts incomplete: %+v", f)
	}
	// 1x1 output widths are {112,56,28,14,7}: gcd 7. Channels gcd 32/64.
	if f.pwW2 != 7 {
		t.Fatalf("pw W2 gcd = %d, want 7", f.pwW2)
	}
	if f.pwC1%32 != 0 || f.pwC2%64 != 0 {
		t.Fatalf("channel gcds: c1=%d c2=%d", f.pwC1, f.pwC2)
	}
	if f.denseN != 1024 {
		t.Fatalf("dense N = %d", f.denseN)
	}
}

func TestExploreMobileNetFindsGoodConfig(t *testing.T) {
	layers := mobilenetLayers(t)
	board := fpga.S10SX
	res, err := Explore(layers, "mobilenetv1", board, 24)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 || len(res.Candidates) != res.Evaluated {
		t.Fatalf("evaluated %d candidates", res.Evaluated)
	}
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	if !best.Synthesizable || best.TimeUS <= 0 {
		t.Fatalf("best candidate invalid: %+v", best)
	}

	// The explorer must do at least as well as the thesis's hand-picked
	// Table 6.7 configuration for this board.
	handDep, err := host.BuildFolded(layers, handPickedS10SX, board, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := handDep.ProfileOps()
	if err != nil {
		t.Fatal(err)
	}
	var handUS float64
	for _, p := range prof {
		handUS += p.TimeUS
	}
	if best.TimeUS > handUS*1.02 {
		t.Fatalf("DSE best (%.0f us) must match or beat the hand-picked config (%.0f us)", best.TimeUS, handUS)
	}
	t.Logf("DSE best: pw %d/%d/%d, %.1f ms vs hand-picked %.1f ms",
		best.PW.W2vec, best.PW.C2vec, best.PW.C1vec, best.TimeUS/1e3, handUS/1e3)
}

func TestExploreRanksSynthesizableFirst(t *testing.T) {
	layers := mobilenetLayers(t)
	res, err := Explore(layers, "mobilenetv1", fpga.A10, 20)
	if err != nil {
		t.Fatal(err)
	}
	seenFail := false
	var prev float64
	for _, c := range res.Candidates {
		if !c.Synthesizable {
			seenFail = true
			continue
		}
		if seenFail {
			t.Fatal("synthesizable candidate ranked after a failing one")
		}
		if prev > 0 && c.TimeUS < prev {
			t.Fatal("synthesizable candidates not sorted by time")
		}
		prev = c.TimeUS
	}
}

func TestExploreRespectsResourceLimits(t *testing.T) {
	layers := mobilenetLayers(t)
	res, err := Explore(layers, "mobilenetv1", fpga.A10, 30)
	if err != nil {
		t.Fatal(err)
	}
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	// The chosen design must be a legal A10 deployment.
	if best.DSPs > fpga.A10.Total.DSPs {
		t.Fatalf("best uses %d DSPs on a %d-DSP device", best.DSPs, fpga.A10.Total.DSPs)
	}
	if best.LogicFrac >= 1 {
		t.Fatalf("best logic fraction %.2f", best.LogicFrac)
	}
}

func TestExploreLeNetFoldedNetwork(t *testing.T) {
	// The explorer generalizes to any network, including ones without 1x1
	// convolutions.
	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(layers, "lenet5", fpga.S10SX, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Best(); err != nil {
		t.Fatal(err)
	}
}

func TestBestErrorsWhenNothingFits(t *testing.T) {
	r := &Result{Net: "x", Board: fpga.A10, Candidates: []Candidate{{Synthesizable: false}}}
	if _, err := r.Best(); err == nil {
		t.Fatal("Best must fail when nothing synthesizes")
	}
}

// TestExploreDeterministicAcrossWorkerCounts is the core guarantee of the
// parallel explorer: the Result — candidate order, modeled times, pruning and
// cache counters — is bit-identical no matter how many workers evaluate it.
func TestExploreDeterministicAcrossWorkerCounts(t *testing.T) {
	lenet, err := relay.Lower(nn.LeNet5())
	if err != nil {
		t.Fatal(err)
	}
	nets := []struct {
		name   string
		layers []*relay.Layer
		max    int
	}{
		{"lenet5", lenet, 8},
		{"mobilenetv1", mobilenetLayers(t), 24},
	}
	for _, net := range nets {
		var ref *Result
		for _, workers := range []int{1, 4, 16} {
			res, err := ExploreWith(net.layers, net.name, fpga.S10SX, Options{
				Workers: workers, MaxCandidates: net.max,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", net.name, workers, err)
			}
			if workers == 1 {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res.Candidates, ref.Candidates) {
				t.Fatalf("%s: candidates differ between 1 and %d workers", net.name, workers)
			}
			if res.Evaluated != ref.Evaluated || res.Pruned != ref.Pruned {
				t.Fatalf("%s workers=%d: evaluated/pruned %d/%d vs serial %d/%d",
					net.name, workers, res.Evaluated, res.Pruned, ref.Evaluated, ref.Pruned)
			}
			if res.CacheHits != ref.CacheHits || res.CacheMisses != ref.CacheMisses {
				t.Fatalf("%s workers=%d: cache %d/%d vs serial %d/%d",
					net.name, workers, res.CacheHits, res.CacheMisses, ref.CacheHits, ref.CacheMisses)
			}
		}
	}
}

// TestExploreCancellation: a pre-cancelled context must return promptly with
// a well-formed partial Result rather than an error or a hang.
func TestExploreCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := ExploreWith(mobilenetLayers(t), "mobilenetv1", fpga.S10SX, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled search took %v", elapsed)
	}
	if !res.Canceled {
		t.Fatal("Result.Canceled must be set for a cancelled search")
	}
	if res.Evaluated != len(res.Candidates) {
		t.Fatalf("Evaluated %d != len(Candidates) %d", res.Evaluated, len(res.Candidates))
	}
	for _, c := range res.Candidates {
		if c.Synthesizable && c.TimeUS <= 0 {
			t.Fatalf("partial result holds malformed candidate: %+v", c)
		}
	}
}

// TestExploreExactBudgetAccounting: the MaxCandidates cap is exact under
// concurrency — workers must not overshoot the budget between them.
func TestExploreExactBudgetAccounting(t *testing.T) {
	layers := mobilenetLayers(t)
	for _, max := range []int{1, 3, 7} {
		res, err := ExploreWith(layers, "mobilenetv1", fpga.S10SX, Options{
			Workers: 8, MaxCandidates: max,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Evaluated != max {
			t.Fatalf("max=%d: evaluated %d", max, res.Evaluated)
		}
		if len(res.Candidates) != max {
			t.Fatalf("max=%d: %d candidates", max, len(res.Candidates))
		}
	}
}

// TestExploreSharedCacheAcrossRuns: a caller-provided cache survives between
// searches, so a second identical run compiles nothing.
func TestExploreSharedCacheAcrossRuns(t *testing.T) {
	layers := mobilenetLayers(t)
	cache := aoc.NewCompileCache()
	first, err := ExploreWith(layers, "mobilenetv1", fpga.S10SX, Options{MaxCandidates: 8, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheMisses == 0 {
		t.Fatal("first run must populate the cache")
	}
	second, err := ExploreWith(layers, "mobilenetv1", fpga.S10SX, Options{MaxCandidates: 8, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheMisses != 0 {
		t.Fatalf("second run recompiled %d kernels", second.CacheMisses)
	}
	if !reflect.DeepEqual(first.Candidates, second.Candidates) {
		t.Fatal("cached run must rank identically to the cold run")
	}
}

// handPickedResNetS10SX mirrors bench.ResNetConfig (duplicated to avoid an
// import cycle).
var handPickedResNetS10SX = func() host.FoldedConfig {
	s33 := topi.OptSched(7, 1, 8)
	return host.FoldedConfig{
		Conv: map[string]topi.ConvSched{
			"conv7x7s2":     topi.OptSched(1, 1, 1),
			"conv3x3s1":     s33,
			"conv3x3s1_res": s33,
			"conv3x3s2":     s33,
			"conv1x1s2_lin": topi.OptSched(1, 1, 8),
		},
		DenseVec:   32,
		Workaround: true,
	}
}()

func TestExploreResNetMatchesHandConfig(t *testing.T) {
	g, err := nn.ResNet(18)
	if err != nil {
		t.Fatal(err)
	}
	layers, err := relay.Lower(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(layers, "resnet18", fpga.S10SX, 16)
	if err != nil {
		t.Fatal(err)
	}
	best, err := res.Best()
	if err != nil {
		t.Fatal(err)
	}
	handDep, err := host.BuildFolded(layers, handPickedResNetS10SX, fpga.S10SX, aoc.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := handDep.ProfileOps()
	if err != nil {
		t.Fatal(err)
	}
	var handUS float64
	for _, p := range prof {
		handUS += p.TimeUS
	}
	// ResNet is bandwidth-bound, so the explorer has limited headroom; it
	// must at least find something within 25% of the thesis's hand pick.
	if best.TimeUS > handUS*1.25 {
		t.Fatalf("DSE best (%.1f ms) too far behind hand config (%.1f ms)", best.TimeUS/1e3, handUS/1e3)
	}
	t.Logf("ResNet-18 DSE best %.1f ms vs hand %.1f ms", best.TimeUS/1e3, handUS/1e3)
}
