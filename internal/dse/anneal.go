package dse

// Guided search: a seeded simulated-annealing/evolutionary explorer over the
// joint schedule space (space.go) that ranks mutation batches with the
// online-trained cost model (model.go) before paying full compile-model cost,
// with ε-greedy exploration so the model cannot lock out regions it has
// never seen.
//
// # Determinism
//
// Fixed seed + any worker count → byte-identical GuidedResult. The invariants
// that make this hold:
//
//   - Every stochastic draw (mutation axis/step/direction, ε coin flips,
//     random restarts) comes from one splitmix64 stream consumed sequentially
//     by the coordinator. Workers never see the RNG.
//   - Generations are barriers: a batch is chosen, then evaluated in
//     parallel into a slot-indexed array (runJobs), then folded into the
//     model in slot order. Worker interleaving cannot reorder observations.
//   - The cost model is refit from its training rows in insertion order with
//     fixed-order float summation; candidate pools are sorted by
//     (score, key) with exact comparisons.
//   - No wall-clock anywhere in the search: annealing temperature decays per
//     generation, never per second, and the trace spans sit on a modeled-time
//     axis. Wall time is reported to stdout by callers, never inside Result.
//   - The compile cache's singleflight guarantees exactly one counted miss
//     per distinct kernel fingerprint, so even CacheHits/CacheMisses are
//     scheduling-independent.

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/ir"
	"repro/internal/relay"
	"repro/internal/topi"
	"repro/internal/trace"
)

// GuidedOptions configures a guided exploration run. The zero value uses
// the embedded Options defaults plus seed 0, population 8, 6 mutations per
// parent, ε = 0.25 and patience 6.
type GuidedOptions struct {
	Options
	// Seed fixes the search trajectory; two runs with equal seeds (and any
	// worker counts) return byte-identical results.
	Seed int64
	// PopSize is the number of parents kept per generation and the full-
	// evaluation batch size; <= 0 means 8.
	PopSize int
	// MutPerParent is the number of mutations proposed per parent per
	// generation; <= 0 means 6.
	MutPerParent int
	// Epsilon is the per-batch-slot probability of picking a random proposal
	// instead of the model's best; < 0 means 0, 0 means the default 0.25.
	Epsilon float64
	// Patience stops the search after this many generations without a new
	// best; <= 0 means 6.
	Patience int
	// Transfer warm-starts the search from another board's serialized state
	// when the space signatures match (population seeded from its top-K,
	// model seeded from its weights). Nil starts cold.
	Transfer *TransferState
}

// GuidedCandidate is one fully evaluated point with its space coordinates
// and the model's prediction at selection time.
type GuidedCandidate struct {
	// Key is the canonical point encoding (axis value indices).
	Key string `json:"key"`
	// Axes maps axis names to the chosen values.
	Axes map[string]int `json:"axes"`
	// Predicted is the model score when the point was selected for
	// evaluation (heuristic for seed points).
	Predicted float64 `json:"predicted"`
	Candidate
}

// JointResult augments Result with the joint-space geometry.
type JointResult struct {
	Result
	// SpaceSize is the total number of joint points (feasible or not).
	SpaceSize int64
	// SpaceSig identifies the space's coordinate system (board-independent).
	SpaceSig string
}

// GuidedResult is the guided explorer's outcome.
type GuidedResult struct {
	JointResult
	Seed        int64
	Generations int
	// RankCorr is the Spearman rank correlation between the model's
	// predictions at selection time and the actual modeled times, over all
	// synthesizable evaluations (0 when fewer than two).
	RankCorr float64
	// Ranked holds every evaluated point in ranking order (synthesizable
	// first, fastest first, evaluation order breaking ties).
	Ranked []GuidedCandidate
	// Model is the final fitted cost model, serializable for transfer.
	Model TransferModel
}

// evalRec is the coordinator's record of one paid full evaluation.
type evalRec struct {
	p    Point
	key  string
	pred float64
	cand *Candidate
}

// ExploreGuided runs guided search over the joint schedule space of the
// network. See the file comment for the determinism contract.
func ExploreGuided(layers []*relay.Layer, net string, board *fpga.Board, opts GuidedOptions) (*GuidedResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	budget := opts.MaxCandidates
	if budget <= 0 {
		budget = 64
	}
	popSize := opts.PopSize
	if popSize <= 0 {
		popSize = 8
	}
	mutPerParent := opts.MutPerParent
	if mutPerParent <= 0 {
		mutPerParent = 6
	}
	eps := opts.Epsilon
	if eps == 0 {
		eps = 0.25
	} else if eps < 0 {
		eps = 0
	}
	patience := opts.Patience
	if patience <= 0 {
		patience = 6
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cache := opts.Cache
	if cache == nil && !opts.NoCache {
		cache = aoc.NewCompileCache()
	}
	if opts.Metrics != nil {
		cache.SetObserver(trace.CacheObserver{Reg: opts.Metrics})
	}
	hits0, misses0 := cache.Stats()
	t0 := time.Now()

	space := BuildSpace(layers, net)
	res := &GuidedResult{
		JointResult: JointResult{
			Result:    Result{Board: board, Net: net},
			SpaceSize: space.Size(),
			SpaceSig:  space.Sig(),
		},
		Seed: opts.Seed,
	}
	defer func() {
		hits1, misses1 := cache.Stats()
		res.CacheHits = hits1 - hits0
		res.CacheMisses = misses1 - misses0
		if m := opts.Metrics; m != nil {
			m.Counter("dse.evaluated").Add(int64(res.Evaluated))
			m.Counter("dse.pruned").Add(int64(res.Pruned))
			m.Counter("dse.pruned_bandwidth").Add(int64(res.PrunedBandwidth))
			m.Counter("dse.pruned_route").Add(int64(res.PrunedRoute))
			m.Counter("dse.generations").Add(int64(res.Generations))
			m.Counter("dse.cache_hits").Add(res.CacheHits)
			m.Counter("dse.cache_misses").Add(res.CacheMisses)
			m.Gauge("dse.cache_hit_ratio").Set(res.CacheHitRate())
			m.Gauge("dse.model_rank_corr").Set(res.RankCorr)
			m.Gauge("dse.space_size").Set(float64(res.SpaceSize))
			if el := time.Since(t0).Seconds(); el > 0 {
				m.Gauge("dse.candidates_per_sec").Set(float64(res.Evaluated) / el)
			}
		}
	}()

	rng := newRNG(opts.Seed)
	model := newCostModel(space, board)
	seen := map[string]bool{}           // evaluated or selected for evaluation
	infeasibleSeen := map[string]bool{} // counted bandwidth prunes
	var recs []*evalRec

	// feasible screens a proposal, counting each distinct infeasible key once.
	feasible := func(p Point, key string) bool {
		ok, _ := space.Feasible(p, board)
		if !ok && !infeasibleSeen[key] {
			infeasibleSeen[key] = true
			res.Pruned++
			res.PrunedBandwidth++
		}
		return ok
	}

	// evalBatch pays full compile-model cost for a batch of points in
	// parallel, then folds results into the model in slot order.
	evalBatch := func(points []Point, preds []float64) error {
		cands := make([]*Candidate, len(points))
		done, errs := runJobs(ctx, len(points), workers, func(i int) error {
			cand, err := evaluate(layers, space.Config(points[i]), board, cache)
			if err != nil {
				return err
			}
			cands[i] = cand
			return nil
		})
		for i, err := range errs {
			if done[i] && err != nil {
				return err
			}
		}
		for i := range points {
			if !done[i] || cands[i] == nil {
				continue // canceled before this slot ran
			}
			recs = append(recs, &evalRec{p: points[i], key: space.Key(points[i]), pred: preds[i], cand: cands[i]})
			model.observe(points[i], cands[i])
		}
		model.fit()
		return nil
	}

	// --- Warm start (transfer tuning) ---
	var seedPts []Point
	var seedPreds []float64
	addSeed := func(p Point) {
		if len(seedPts) >= popSize || len(seedPts) >= budget {
			return
		}
		key := space.Key(p)
		if seen[key] || !feasible(p, key) {
			return
		}
		seen[key] = true
		seedPts = append(seedPts, p.Clone())
		seedPreds = append(seedPreds, model.score(p))
	}
	if t := opts.Transfer; t != nil && t.SpaceSig == space.Sig() {
		model.warmStart(t.Model.TimeWeights, t.Model.FeasWeights, t.Model.MaxTimeUS)
		// Transferred points take at most half the population: the source
		// board's frontier is a prior, not a substitute for this board's own
		// preference seeds (boards disagree on routability and bandwidth, so
		// a full takeover would anchor the search in the wrong region).
		for _, e := range t.TopK {
			if len(seedPts) >= popSize/2 {
				break
			}
			if p, err := space.PointFromKey(e.Key); err == nil {
				addSeed(p)
			}
		}
	}
	// Preference seeds: the exhaustive tier's §4.11 enumeration order
	// (largest total unroll first, balanced channel factors breaking ties)
	// embeds the thesis's factor-selection heuristics, and the same
	// routability probe screens out tilings whose dominant kernel cannot
	// route alone (cheap: one kernel compile each, memoized). Seeding the
	// population with the surviving frontier starts guided search in
	// exhaustive's best region, so the budget is spent refining the axes
	// exhaustive fixes (dense kvec, depthwise width, F×F unroll, workaround)
	// rather than rediscovering the 1x1 tiling from scratch. Probe compiles
	// are not full evaluations and do not count against the budget — the
	// exhaustive tier accounts them identically.
	seedsPref, probePruned := preferenceSeeds(space, board, popSize-2, cache)
	res.Pruned += probePruned
	res.PrunedRoute += probePruned
	for _, p := range seedsPref {
		addSeed(p)
	}
	// Greedy seed: every axis at max, repaired to feasibility by walking the
	// largest bandwidth-implicated unroll down.
	greedy := make(Point, len(space.Axes))
	for i := range greedy {
		greedy[i] = len(space.Axes[i].Values) - 1
	}
	for tries := 0; tries < 64; tries++ {
		if ok, _ := space.Feasible(greedy, board); ok {
			break
		}
		bestAx, bestVal := -1, 0
		for _, name := range []string{axPWW2, axPWC1, axC33W2, axC33C1} {
			if i, ok := space.idx[name]; ok && greedy[i] > 0 {
				if v := space.Axes[i].Values[greedy[i]]; v > bestVal {
					bestAx, bestVal = i, v
				}
			}
		}
		if bestAx < 0 {
			break
		}
		greedy[bestAx]--
	}
	addSeed(greedy)
	// Conservative seed: every axis at its smallest value.
	addSeed(make(Point, len(space.Axes)))
	// Random seeds fill the remaining population slots.
	for tries := 0; tries < 20*popSize && len(seedPts) < popSize && len(seedPts) < budget; tries++ {
		addSeed(randomPoint(space, rng))
	}
	if err := evalBatch(seedPts, seedPreds); err != nil {
		return nil, err
	}

	// --- Annealed generations ---
	temp := 1.0
	best := bestSynth(recs)
	stale := 0
	for len(recs) < budget && stale < patience && ctx.Err() == nil {
		parents := rankRecs(recs)
		if len(parents) > popSize {
			parents = parents[:popSize]
		}
		if len(parents) == 0 {
			break
		}
		// Propose mutations; dedup within the generation and against
		// everything already evaluated.
		type prop struct {
			p     Point
			key   string
			score float64
		}
		var props []prop
		inGen := map[string]bool{}
		for _, par := range parents {
			for m := 0; m < mutPerParent; m++ {
				child := mutate(space, par.p, rng, temp)
				key := space.Key(child)
				if seen[key] || inGen[key] {
					continue
				}
				inGen[key] = true
				if !feasible(child, key) {
					continue
				}
				props = append(props, prop{child, key, model.score(child)})
			}
		}
		// Random restarts keep the pool alive when mutation dries up.
		for tries := 0; tries < 50 && len(props) == 0; tries++ {
			p := randomPoint(space, rng)
			key := space.Key(p)
			if seen[key] || inGen[key] || !feasible(p, key) {
				continue
			}
			inGen[key] = true
			props = append(props, prop{p, key, model.score(p)})
		}
		if len(props) == 0 {
			break
		}
		sort.Slice(props, func(i, j int) bool {
			if props[i].score != props[j].score {
				return props[i].score < props[j].score
			}
			return props[i].key < props[j].key
		})
		// ε-greedy batch selection: each slot usually takes the model's best
		// remaining proposal, but with probability ε takes a random one.
		batchN := popSize
		if left := budget - len(recs); batchN > left {
			batchN = left
		}
		var batchPts []Point
		var batchPreds []float64
		for len(batchPts) < batchN && len(props) > 0 {
			idx := 0
			if len(props) > 1 && rng.float() < eps {
				idx = rng.intn(len(props))
			}
			pr := props[idx]
			props = append(props[:idx], props[idx+1:]...)
			seen[pr.key] = true
			batchPts = append(batchPts, pr.p)
			batchPreds = append(batchPreds, pr.score)
		}
		if err := evalBatch(batchPts, batchPreds); err != nil {
			return nil, err
		}
		res.Generations++
		if nb := bestSynth(recs); nb != nil && (best == nil || nb.cand.TimeUS < best.cand.TimeUS) {
			best = nb
			stale = 0
		} else {
			stale++
		}
		temp *= 0.8
	}
	res.Canceled = ctx.Err() != nil

	// --- Ranking, model quality, observability ---
	ranked := rankRecs(recs)
	res.Evaluated = len(recs)
	for _, r := range ranked {
		c := *r.cand
		res.Candidates = append(res.Candidates, c)
		res.Ranked = append(res.Ranked, GuidedCandidate{
			Key: r.key, Axes: space.Values(r.p), Predicted: r.pred, Candidate: c,
		})
	}
	// Model quality: rank correlation between the *final* fitted model's
	// predictions and the actual modeled times over everything evaluated
	// (selection-time predictions are used before the model's first fit, but
	// they mix heuristic and model scales and would understate the model).
	var preds, actuals []float64
	for _, r := range recs {
		if r.cand.Synthesizable {
			pred := r.pred
			if model.wTime != nil {
				// Time head only: the feasibility penalty is part of the
				// search objective but not of the latency prediction being
				// scored here.
				pred = dot(model.wTime, featurize(space, board, r.p))
			}
			preds = append(preds, pred)
			actuals = append(actuals, r.cand.TimeUS)
		}
	}
	res.RankCorr = trace.SpearmanRank(preds, actuals)
	res.Model = TransferModel{TimeWeights: model.wTime, FeasWeights: model.wFeas, MaxTimeUS: model.maxTime}

	if opts.Trace != nil || opts.Metrics != nil {
		var cursor float64
		for i, r := range recs {
			opts.Metrics.Histogram("dse.candidate_time_us").Observe(r.cand.TimeUS)
			dur := r.cand.TimeUS
			if dur <= 0 {
				dur = 1
			}
			args := map[string]string{
				"synthesizable": fmt.Sprintf("%v", r.cand.Synthesizable),
				"key":           r.key,
				"predicted":     fmt.Sprintf("%.3f", r.pred),
			}
			if r.cand.FailReason != "" {
				args["fail"] = r.cand.FailReason
			}
			opts.Trace.Add(trace.Span{Proc: "host", Track: "dse guided",
				Name: fmt.Sprintf("eval %d", i), Cat: "candidate",
				StartUS: cursor, DurUS: dur, Args: args})
			cursor += dur
		}
	}
	return res, nil
}

// bestSynth returns the fastest synthesizable record (ties broken by
// evaluation order), or nil.
func bestSynth(recs []*evalRec) *evalRec {
	var best *evalRec
	for _, r := range recs {
		if r.cand.Synthesizable && (best == nil || r.cand.TimeUS < best.cand.TimeUS) {
			best = r
		}
	}
	return best
}

// rankRecs orders records: synthesizable first, fastest first, evaluation
// order breaking ties exactly (stable sort over the insertion-ordered slice).
func rankRecs(recs []*evalRec) []*evalRec {
	out := append([]*evalRec(nil), recs...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.cand.Synthesizable != b.cand.Synthesizable {
			return a.cand.Synthesizable
		}
		if !a.cand.Synthesizable {
			return false
		}
		return a.cand.TimeUS < b.cand.TimeUS
	})
	return out
}

// mutate returns a copy of p with one or two axes perturbed. The step radius
// shrinks with the annealing temperature; a step that clamps back onto the
// parent's value reassigns the axis uniformly instead, so mutation always
// moves when the axis has more than one value.
func mutate(s *Space, p Point, rng *splitmix64, temp float64) Point {
	child := p.Clone()
	nAxes := 1 + rng.intn(2)
	for a := 0; a < nAxes; a++ {
		ax := rng.intn(len(s.Axes))
		n := len(s.Axes[ax].Values)
		if n == 1 {
			continue
		}
		radius := 1 + int(temp*float64(n-1))
		if radius >= n {
			radius = n - 1
		}
		step := 1 + rng.intn(radius)
		if rng.intn(2) == 0 {
			step = -step
		}
		ni := child[ax] + step
		if ni < 0 {
			ni = 0
		}
		if ni >= n {
			ni = n - 1
		}
		if ni == child[ax] {
			ni = rng.intn(n)
		}
		child[ax] = ni
	}
	return child
}

// preferenceSeeds returns up to k feasible points from the exhaustive
// tier's enumeration frontier: the dominant conv tiling axes (1x1 when the
// network has them, else 3x3) enumerated in §4.11 preference order — total
// unroll descending, balanced channel factors breaking ties, each 1x1
// tiling routability-probed exactly like ExploreWith's phase 2 — with every
// other axis at its maximum (3x3 output-channel unroll at 1, matching the
// exhaustive tier's OptSched(w2, 1, c1)). Deterministic: pure function of
// the space, board and probe outcomes. The second return value counts
// combos whose probe failed to route (the caller reports them as route
// prunes).
func preferenceSeeds(s *Space, board *fpga.Board, k int, cache *aoc.CompileCache) ([]Point, int) {
	if k <= 0 {
		return nil, 0
	}
	base := make(Point, len(s.Axes))
	for i := range base {
		base[i] = len(s.Axes[i].Values) - 1
	}
	// The exhaustive tier schedules 3x3 convs as OptSched(w2, 1, c1): output-
	// channel unroll on the (secondary) 3x3 group multiplies into the F×F
	// unroll and blows the DSP budget on big boards' stems. Seeds mirror
	// that; the annealer is free to raise it later.
	if i, ok := s.idx[axC33C2]; ok {
		base[i] = 0
	}
	type combo struct {
		idx     []int // value indices for the tiling axes
		unroll  int
		balance int
	}
	var axes []int // positions of the tiling axes in Axes
	var combos []combo
	if s.hasPW {
		iw, ic2, ic1 := s.idx[axPWW2], s.idx[axPWC2], s.idx[axPWC1]
		axes = []int{iw, ic2, ic1}
		for wi, w2 := range s.Axes[iw].Values {
			for c2i, c2 := range s.Axes[ic2].Values {
				for c1i, c1 := range s.Axes[ic1].Values {
					combos = append(combos, combo{[]int{wi, c2i, c1i}, w2 * c2 * c1, abs(c2 - c1)})
				}
			}
		}
	} else if s.has33 {
		iw, ic1 := s.idx[axC33W2], s.idx[axC33C1]
		axes = []int{iw, ic1}
		for wi, w2 := range s.Axes[iw].Values {
			for c1i, c1 := range s.Axes[ic1].Values {
				combos = append(combos, combo{[]int{wi, c1i}, w2 * c1, 0})
			}
		}
	} else {
		return nil, 0
	}
	sort.SliceStable(combos, func(i, j int) bool {
		if combos[i].unroll != combos[j].unroll {
			return combos[i].unroll > combos[j].unroll
		}
		return combos[i].balance < combos[j].balance
	})
	var out []Point
	probePruned := 0
	for _, c := range combos {
		if len(out) >= k {
			break
		}
		p := base.Clone()
		for i, ax := range axes {
			p[ax] = c.idx[i]
		}
		if s.hasPW {
			// Routability probe (mirrors ExploreWith phase 2): a 1x1 kernel
			// that cannot route alone can never route inside the full design.
			w2 := s.Axes[axes[0]].Values[c.idx[0]]
			c2 := s.Axes[axes[1]].Values[c.idx[1]]
			c1 := s.Axes[axes[2]].Values[c.idx[2]]
			probe, err := topi.ConvParam("dse_probe", 1, 1, topi.OptSched(w2, c2, c1), true, true, false, true)
			if err != nil {
				probePruned++
				continue
			}
			pd, err := aoc.CompileCached("dse-probe", []*ir.Kernel{probe.Op.Kernel}, board, aoc.DefaultOptions, cache)
			if err != nil || !pd.Synthesizable() {
				probePruned++
				continue
			}
		}
		// Repair any remaining bandwidth infeasibility by walking the other
		// conv group's unrolls down (the tiling axes themselves stay fixed —
		// an infeasible combo is simply skipped).
		for tries := 0; tries < 32; tries++ {
			if ok, _ := s.Feasible(p, board); ok {
				break
			}
			moved := false
			for _, name := range []string{axC33W2, axC33C1, axPWW2, axPWC1} {
				i, ok := s.idx[name]
				if !ok || p[i] == 0 {
					continue
				}
				fixed := false
				for _, ax := range axes {
					if ax == i {
						fixed = true
					}
				}
				if fixed {
					continue
				}
				p[i]--
				moved = true
				break
			}
			if !moved {
				break
			}
		}
		if ok, _ := s.Feasible(p, board); ok {
			out = append(out, p)
		}
	}
	return out, probePruned
}

// randomPoint draws a uniform point from the space.
func randomPoint(s *Space, rng *splitmix64) Point {
	p := make(Point, len(s.Axes))
	for i := range s.Axes {
		p[i] = rng.intn(len(s.Axes[i].Values))
	}
	return p
}
