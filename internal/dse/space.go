package dse

// The joint schedule space (§4.11's "tiling × unroll × kvec × fold factor").
//
// The exhaustive explorer in dse.go searches the two dominant knobs (the 1x1
// tiling cross the 3x3 tiling) and fixes everything else at its largest legal
// value. The guided tier searches the *joint* space instead: every
// per-signature schedule axis the folded deployment exposes — 1x1 tiling
// (w2/c2/c1), 3x3 tiling (w2/c2/c1 plus the F×F unroll toggle), projection
// channel unroll, depthwise width unroll, a per-signature dense reduction
// unroll, and the stride-1 coalescing workaround toggle. The cross product is
// orders of magnitude larger than what exhaustive enumeration can cover
// (hundreds of points for LeNet, hundreds of thousands for MobileNet), which
// is exactly the regime the learned cost model is for.
//
// A Space is a pure function of the lowered network: axis names and value
// lists are derived only from layer shapes (divisor sets), never from the
// board, so a Space signature identifies the same coordinate system across
// boards and transfer tuning can map one board's history onto another's
// search. Board-dependent constraints (the §4.11 bandwidth rule) live in
// Feasible, which takes the board explicitly.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/relay"
	"repro/internal/topi"
)

// Axis is one independently searchable schedule knob.
type Axis struct {
	// Name identifies the knob ("pw.w2", "dense.dense_relu.kvec", ...).
	Name string
	// Values are the legal settings in ascending order. Boolean knobs encode
	// as {0, 1}.
	Values []int
}

// Max returns the largest value of the axis (axes are never empty).
func (a *Axis) Max() int { return a.Values[len(a.Values)-1] }

// Point is one joint configuration: a value index per axis, in axis order.
type Point []int

// Clone returns an independent copy of the point.
func (p Point) Clone() Point { return append(Point(nil), p...) }

// Space is the joint schedule space of one lowered network.
type Space struct {
	Net  string
	Axes []Axis

	layers []*relay.Layer
	idx    map[string]int // axis name -> position in Axes

	// Per-group MAC counts (FLOPs/2) for the model's cycles-proxy features.
	pwMACs, c33MACs, projMACs, dwMACs float64
	denseMACs                         map[string]float64
	denseSigs                         []string // sorted dense signatures
	hasPW, has33, hasProj, hasDW      bool
}

// axisNames in construction order; only axes whose group exists are added.
const (
	axPWW2    = "pw.w2"
	axPWC2    = "pw.c2"
	axPWC1    = "pw.c1"
	axC33W2   = "c33.w2"
	axC33C2   = "c33.c2"
	axC33C1   = "c33.c1"
	axC33FF   = "c33.unroll_ff"
	axProjC1  = "proj.c1"
	axDWW2    = "dw.w2"
	axWkrd    = "workaround"
	densePref = "dense."
)

// BuildSpace derives the joint schedule space from a lowered network.
func BuildSpace(layers []*relay.Layer, net string) *Space {
	facts := gatherFacts(layers)
	s := &Space{Net: net, layers: layers, idx: map[string]int{},
		denseMACs: map[string]float64{},
		hasPW:     facts.hasPW, has33: facts.has33,
		hasProj: facts.hasProj, hasDW: facts.hasDW}

	add := func(name string, values []int) {
		if len(values) == 0 {
			values = []int{1}
		}
		s.idx[name] = len(s.Axes)
		s.Axes = append(s.Axes, Axis{Name: name, Values: values})
	}

	// MAC totals per group (feature weights for the cost model).
	denseN := map[string]int{}
	c33C2 := 0
	for _, l := range layers {
		macs := float64(l.FLOPs()) / 2
		switch l.Kind {
		case relay.KConv:
			switch {
			case l.F == 1 && l.S == 1:
				s.pwMACs += macs
			case l.F == 1:
				s.projMACs += macs
			case l.F == 3:
				s.c33MACs += macs
				if c33C2 == 0 {
					c33C2 = l.OutShape[0]
				} else {
					c33C2 = gcd(c33C2, l.OutShape[0])
				}
			}
		case relay.KDepthwise:
			s.dwMACs += macs
		case relay.KDense:
			sig := "dense"
			if l.Relu {
				sig = "dense_relu"
			}
			s.denseMACs[sig] += macs
			if denseN[sig] == 0 {
				denseN[sig] = l.InShape[0]
			} else {
				denseN[sig] = gcd(denseN[sig], l.InShape[0])
			}
		}
	}

	if facts.hasPW {
		// w2 = 1 means scalar stores; the exhaustive tier prunes it outright
		// (dse.go phase 1), so the joint space excludes it from the axis.
		w2s := divisorsOf(facts.pwW2, 14)
		if len(w2s) > 1 && w2s[0] == 1 {
			w2s = w2s[1:]
		}
		add(axPWW2, w2s)
		add(axPWC2, divisorsOf(facts.pwC2, 64))
		add(axPWC1, divisorsOf(facts.pwC1, 32))
	}
	if facts.has33 {
		add(axC33W2, divisorsOf(facts.c33W2, 7))
		add(axC33C2, divisorsOf(c33C2, 64))
		add(axC33C1, divisorsOf(facts.c33C1, 16))
		add(axC33FF, []int{0, 1})
	}
	if facts.hasProj {
		add(axProjC1, divisorsOf(facts.projC1, 8))
	}
	if facts.hasDW {
		add(axDWW2, divisorsOf(facts.dwW2, 7))
	}
	for sig := range denseN {
		s.denseSigs = append(s.denseSigs, sig)
	}
	sort.Strings(s.denseSigs)
	for _, sig := range s.denseSigs {
		add(densePref+sig+".kvec", divisorsOf(denseN[sig], 32))
	}
	add(axWkrd, []int{0, 1})
	return s
}

// Size returns the total number of joint points (feasible or not).
func (s *Space) Size() int64 {
	n := int64(1)
	for i := range s.Axes {
		n *= int64(len(s.Axes[i].Values))
	}
	return n
}

// Sig returns the space signature: a canonical rendering of every axis name
// and value list. Two spaces with equal signatures share a coordinate system
// (points and serialized history transfer between them verbatim); the
// signature is board-independent by construction.
func (s *Space) Sig() string {
	var b strings.Builder
	b.WriteString(s.Net)
	for i := range s.Axes {
		b.WriteByte(';')
		b.WriteString(s.Axes[i].Name)
		b.WriteByte('=')
		for j, v := range s.Axes[i].Values {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(v))
		}
	}
	return b.String()
}

// Key renders a point as a compact canonical string (value indices joined),
// used for dedup sets, deterministic tie-breaks and transfer serialization.
func (s *Space) Key(p Point) string {
	var b strings.Builder
	for i, vi := range p {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(vi))
	}
	return b.String()
}

// PointFromKey parses a Key back into a point, validating bounds.
func (s *Space) PointFromKey(key string) (Point, error) {
	parts := strings.Split(key, ".")
	if len(parts) != len(s.Axes) {
		return nil, fmt.Errorf("dse: key %q has %d axes, space has %d", key, len(parts), len(s.Axes))
	}
	p := make(Point, len(parts))
	for i, part := range parts {
		vi, err := strconv.Atoi(part)
		if err != nil || vi < 0 || vi >= len(s.Axes[i].Values) {
			return nil, fmt.Errorf("dse: key %q: bad index for axis %s", key, s.Axes[i].Name)
		}
		p[i] = vi
	}
	return p, nil
}

// value returns the chosen value of the named axis at p, or def when the
// space has no such axis.
func (s *Space) value(p Point, name string, def int) int {
	i, ok := s.idx[name]
	if !ok {
		return def
	}
	return s.Axes[i].Values[p[i]]
}

// Values maps axis names to chosen values at p (for reports and JSON).
func (s *Space) Values(p Point) map[string]int {
	out := make(map[string]int, len(s.Axes))
	for i := range s.Axes {
		out[s.Axes[i].Name] = s.Axes[i].Values[p[i]]
	}
	return out
}

// Config assembles the FoldedConfig a point denotes, covering every signature
// the network uses (mirrors buildConfig for the knobs both tiers share).
func (s *Space) Config(p Point) host.FoldedConfig {
	pwSched := topi.OptSched(s.value(p, axPWW2, 1), s.value(p, axPWC2, 1), s.value(p, axPWC1, 1))
	c33Sched := topi.ConvSched{
		W2vec:    s.value(p, axC33W2, 1),
		C2vec:    s.value(p, axC33C2, 1),
		C1vec:    s.value(p, axC33C1, 1),
		UnrollFF: s.value(p, axC33FF, 1) == 1,
	}
	projSched := topi.OptSched(1, 1, s.value(p, axProjC1, 1))

	conv := map[string]topi.ConvSched{}
	dw := map[string]int{}
	for _, l := range s.layers {
		switch l.Kind {
		case relay.KConv:
			sig := convSigLocal(l)
			switch {
			case l.F == 1 && l.S == 1:
				conv[sig] = pwSched
			case l.F == 1:
				conv[sig] = projSched
			case l.F == 3:
				conv[sig] = c33Sched
			default:
				conv[sig] = topi.OptSched(1, 1, 1)
			}
		case relay.KDepthwise:
			dw[fmt.Sprintf("dw%dx%ds%d", l.F, l.F, l.S)] = s.value(p, axDWW2, 1)
		}
	}
	dense := map[string]int{}
	for _, sig := range s.denseSigs {
		dense[sig] = s.value(p, densePref+sig+".kvec", 1)
	}
	return host.FoldedConfig{Conv: conv, DWVec: dw, DenseVec: 1, Dense: dense,
		Workaround: s.value(p, axWkrd, 1) == 1}
}

// Feasible applies the cheap board-dependent screens (§4.11 rule 1: the
// widest memory access must not exceed external bandwidth at a conservative
// clock). Infeasible points are never compiled; the guided tier counts them
// as bandwidth prunes. The reason string is empty when feasible.
func (s *Space) Feasible(p Point, board *fpga.Board) (bool, string) {
	maxFloats := int(board.BytesPerCycleAt(board.BaseFmaxMHz*0.7) / 4)
	if s.hasPW {
		if w2, c1 := s.value(p, axPWW2, 1), s.value(p, axPWC1, 1); w2*c1 > 4*maxFloats {
			return false, "bandwidth: 1x1"
		}
	}
	if s.has33 {
		if w2, c1 := s.value(p, axC33W2, 1), s.value(p, axC33C1, 1); w2*c1*9 > 16*maxFloats {
			return false, "bandwidth: 3x3"
		}
	}
	return true, ""
}

// Enumerate walks every point of the space in odometer order (last axis
// fastest) and calls fn with a reused buffer; fn must copy the point if it
// keeps it. Enumeration stops early when fn returns false.
func (s *Space) Enumerate(fn func(p Point) bool) {
	p := make(Point, len(s.Axes))
	for {
		if !fn(p) {
			return
		}
		i := len(p) - 1
		for i >= 0 {
			p[i]++
			if p[i] < len(s.Axes[i].Values) {
				break
			}
			p[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}
