package dse

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/aoc"
	"repro/internal/fpga"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/trace"
)

func lenetLayers(t *testing.T) []*relay.Layer {
	t.Helper()
	layers, err := relay.Lower(nn.LeNet5())
	if err != nil {
		t.Fatal(err)
	}
	return layers
}

// marshalGuided renders a GuidedResult to the canonical JSON bytes the
// determinism contract is stated over.
func marshalGuided(t *testing.T, r *GuidedResult) []byte {
	t.Helper()
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestGuidedSeedDeterminismTable: fixed seed + any worker count → a
// byte-identical GuidedResult, across several seeds. Different seeds may
// take different trajectories but every one must reproduce itself exactly.
func TestGuidedSeedDeterminismTable(t *testing.T) {
	layers := lenetLayers(t)
	for _, seed := range []int64{0, 1, 7, 42} {
		var ref []byte
		var refRanked []GuidedCandidate
		for _, workers := range []int{1, 2, 8} {
			res, err := ExploreGuided(layers, "lenet5", fpga.A10, GuidedOptions{
				Options: Options{Workers: workers, MaxCandidates: 24},
				Seed:    seed,
			})
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			buf := marshalGuided(t, res)
			if workers == 1 {
				ref, refRanked = buf, res.Ranked
				continue
			}
			if string(buf) != string(ref) {
				t.Fatalf("seed=%d: result bytes differ between workers=1 and workers=%d", seed, workers)
			}
			if !reflect.DeepEqual(res.Ranked, refRanked) {
				t.Fatalf("seed=%d workers=%d: rankings differ from serial", seed, workers)
			}
		}
	}
}

// TestGuidedWorkers16ByteIdentical is the acceptance criterion stated on the
// issue verbatim: Workers:16 must be byte-identical to Workers:1 on the big
// joint space.
func TestGuidedWorkers16ByteIdentical(t *testing.T) {
	layers := mobilenetLayers(t)
	run := func(workers int) []byte {
		res, err := ExploreGuided(layers, "mobilenetv1", fpga.S10SX, GuidedOptions{
			Options: Options{Workers: workers, MaxCandidates: 48},
			Seed:    1,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return marshalGuided(t, res)
	}
	if string(run(1)) != string(run(16)) {
		t.Fatal("GuidedResult bytes differ between Workers:1 and Workers:16")
	}
}

// TestGuidedMatchesExhaustiveJointLeNet: on a space small enough to sweep,
// guided search must find the global best with at least 10x fewer full
// evaluations than the exhaustive enumeration paid.
func TestGuidedMatchesExhaustiveJointLeNet(t *testing.T) {
	layers := lenetLayers(t)
	ex, err := ExploreJointWith(layers, "lenet5", fpga.A10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exBest, err := ex.Best()
	if err != nil {
		t.Fatal(err)
	}
	gd, err := ExploreGuided(layers, "lenet5", fpga.A10, GuidedOptions{
		Options: Options{MaxCandidates: 32}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gdBest, err := gd.Best()
	if err != nil {
		t.Fatal(err)
	}
	if gdBest.TimeUS != exBest.TimeUS {
		t.Fatalf("guided best %.3f us != exhaustive best %.3f us (over %d evals vs %d)",
			gdBest.TimeUS, exBest.TimeUS, gd.Evaluated, ex.Evaluated)
	}
	if ex.Evaluated < 10*gd.Evaluated {
		t.Fatalf("guided paid %d evals, exhaustive %d: want >= 10x reduction", gd.Evaluated, ex.Evaluated)
	}
	if gd.SpaceSig != ex.SpaceSig || gd.SpaceSize != ex.SpaceSize {
		t.Fatalf("tiers disagree on the space: %q/%d vs %q/%d",
			gd.SpaceSig, gd.SpaceSize, ex.SpaceSig, ex.SpaceSize)
	}
}

// TestGuidedSharedCacheConcurrentRuns: two guided searches sharing one
// CompileCache and running concurrently must (a) each produce exactly the
// result they produce alone and (b) keep exact global accounting — the
// singleflight guarantees one miss per distinct kernel fingerprint no matter
// which run gets there first. Run under -race this also proves the sharded
// cache is data-race-free under cross-run contention.
func TestGuidedSharedCacheConcurrentRuns(t *testing.T) {
	layers := mobilenetLayers(t)
	// Two same-board searches with different seeds: different trajectories,
	// heavily overlapping kernel sets (fingerprints are board-specific, so
	// only same-board runs can share compilations).
	seeds := []int64{1, 2}
	solo := func(seed int64, cache *aoc.CompileCache) *GuidedResult {
		res, err := ExploreGuided(layers, "mobilenetv1", fpga.S10SX, GuidedOptions{
			Options: Options{MaxCandidates: 24, Cache: cache}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	solo1, solo2 := solo(seeds[0], nil), solo(seeds[1], nil)

	cache := aoc.NewCompileCache()
	results := make([]*GuidedResult, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			results[i], errs[i] = ExploreGuided(layers, "mobilenetv1", fpga.S10SX, GuidedOptions{
				Options: Options{MaxCandidates: 24, Cache: cache}, Seed: seed,
			})
		}(i, seed)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	// (a) Search outcomes are cache-independent: same rankings as solo runs.
	if !reflect.DeepEqual(results[0].Ranked, solo1.Ranked) {
		t.Fatal("seed-1 rankings changed when sharing a cache with a concurrent run")
	}
	if !reflect.DeepEqual(results[1].Ranked, solo2.Ranked) {
		t.Fatal("seed-2 rankings changed when sharing a cache with a concurrent run")
	}

	// (b) Exact global accounting: every distinct fingerprint missed exactly
	// once (the singleflight contract), lookups partition into hits+misses.
	hits, misses := cache.Stats()
	if misses != int64(cache.Len()) {
		t.Fatalf("misses %d != distinct cached entries %d: singleflight violated", misses, cache.Len())
	}
	// Each run issues the identical lookup sequence whether or not the cache
	// is shared (the rankings above prove the trajectories matched), so the
	// shared cache's total lookups equal the solo totals combined.
	soloLookups := solo1.CacheHits + solo1.CacheMisses + solo2.CacheHits + solo2.CacheMisses
	if hits+misses != soloLookups {
		t.Fatalf("shared-cache lookups %d != solo lookup total %d", hits+misses, soloLookups)
	}
	// Sharing must help: the runs' preference probes and overlapping
	// candidates compile once instead of twice, so the shared miss total is
	// strictly below the two private-miss totals combined.
	if misses >= solo1.CacheMisses+solo2.CacheMisses {
		t.Fatalf("shared cache missed %d times, solo runs %d+%d: no cross-run reuse",
			misses, solo1.CacheMisses, solo2.CacheMisses)
	}
}

// TestGuidedTransferWarmStart: a search state serialized on one board must
// warm-start another board's search — the S10SX run with a quarter of the
// cold budget must do at least as well as the cold run at that same budget,
// and the state must survive a disk round-trip.
func TestGuidedTransferWarmStart(t *testing.T) {
	layers := mobilenetLayers(t)
	a10, err := ExploreGuided(layers, "mobilenetv1", fpga.A10, GuidedOptions{
		Options: Options{MaxCandidates: 48}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	state := a10.TransferState(8)
	if state.SpaceSig != a10.SpaceSig || state.Board != "A10" {
		t.Fatalf("transfer state mis-labeled: %+v", state)
	}
	if len(state.TopK) == 0 || len(state.TopK) > 8 {
		t.Fatalf("top-K length %d, want 1..8", len(state.TopK))
	}
	if len(state.Model.TimeWeights) == 0 {
		t.Fatal("transfer state carries no fitted time head")
	}

	path := filepath.Join(t.TempDir(), "a10.json")
	if err := SaveTransfer(path, state); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTransfer(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, state) {
		t.Fatal("transfer state changed across the disk round-trip")
	}

	cold, err := ExploreGuided(layers, "mobilenetv1", fpga.S10SX, GuidedOptions{
		Options: Options{MaxCandidates: 12}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ExploreGuided(layers, "mobilenetv1", fpga.S10SX, GuidedOptions{
		Options: Options{MaxCandidates: 12}, Seed: 1, Transfer: loaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	coldBest, err := cold.Best()
	if err != nil {
		t.Fatal(err)
	}
	warmBest, err := warm.Best()
	if err != nil {
		t.Fatal(err)
	}
	if warmBest.TimeUS > coldBest.TimeUS {
		t.Fatalf("warm-started best %.1f us worse than cold best %.1f us at equal budget",
			warmBest.TimeUS, coldBest.TimeUS)
	}
	// Same-board resume: a state serialized from a larger run carries its
	// best point in TopK[0], so a warm-started run seeds and re-evaluates it
	// — the resumed best can never be worse than the serialized one.
	big, err := ExploreGuided(layers, "mobilenetv1", fpga.S10SX, GuidedOptions{
		Options: Options{MaxCandidates: 64}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bigBest, err := big.Best()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ExploreGuided(layers, "mobilenetv1", fpga.S10SX, GuidedOptions{
		Options: Options{MaxCandidates: 12}, Seed: 1, Transfer: big.TransferState(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	resumedBest, err := resumed.Best()
	if err != nil {
		t.Fatal(err)
	}
	if resumedBest.TimeUS > bigBest.TimeUS {
		t.Fatalf("resumed best %.1f us worse than the serialized run's best %.1f us",
			resumedBest.TimeUS, bigBest.TimeUS)
	}

	// A state from a different space must be ignored, not crash the search.
	alien := &TransferState{Net: "other", SpaceSig: "other;space", Model: *&state.Model}
	ignored, err := ExploreGuided(layers, "mobilenetv1", fpga.S10SX, GuidedOptions{
		Options: Options{MaxCandidates: 12}, Seed: 1, Transfer: alien,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(marshalGuided(t, ignored)) != string(marshalGuided(t, cold)) {
		t.Fatal("mismatched-space transfer state changed the search result")
	}
}

// TestGuidedPruningCounters: the published dse.pruned_bandwidth and
// dse.pruned_route counters must equal the Result's split exactly, and the
// split must account for every prune.
func TestGuidedPruningCounters(t *testing.T) {
	reg := trace.NewRegistry()
	res, err := ExploreGuided(mobilenetLayers(t), "mobilenetv1", fpga.A10, GuidedOptions{
		Options: Options{MaxCandidates: 48, Metrics: reg}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != res.PrunedBandwidth+res.PrunedRoute {
		t.Fatalf("Pruned %d != bandwidth %d + route %d", res.Pruned, res.PrunedBandwidth, res.PrunedRoute)
	}
	if res.PrunedRoute == 0 {
		t.Fatal("expected the routability probe to prune unroutable preference seeds on A10")
	}
	if got := reg.Counter("dse.pruned_bandwidth").Value(); got != int64(res.PrunedBandwidth) {
		t.Fatalf("dse.pruned_bandwidth = %d, want %d", got, res.PrunedBandwidth)
	}
	if got := reg.Counter("dse.pruned_route").Value(); got != int64(res.PrunedRoute) {
		t.Fatalf("dse.pruned_route = %d, want %d", got, res.PrunedRoute)
	}
	if got := reg.Counter("dse.evaluated").Value(); got != int64(res.Evaluated) {
		t.Fatalf("dse.evaluated = %d, want %d", got, res.Evaluated)
	}
	if got := reg.Gauge("dse.model_rank_corr").Value(); got != res.RankCorr {
		t.Fatalf("dse.model_rank_corr = %v, want %v", got, res.RankCorr)
	}
	if got := reg.Gauge("dse.space_size").Value(); got != float64(res.SpaceSize) {
		t.Fatalf("dse.space_size = %v, want %v", got, res.SpaceSize)
	}
}

// TestGuidedRankCorrSignal: with a trained model the predicted-vs-actual
// rank correlation must show real signal on both a small and a large space.
func TestGuidedRankCorrSignal(t *testing.T) {
	cases := []struct {
		net    string
		layers []*relay.Layer
		board  *fpga.Board
		budget int
	}{
		{"lenet5", lenetLayers(t), fpga.A10, 32},
		{"mobilenetv1", mobilenetLayers(t), fpga.S10SX, 64},
	}
	for _, c := range cases {
		res, err := ExploreGuided(c.layers, c.net, c.board, GuidedOptions{
			Options: Options{MaxCandidates: c.budget}, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.net, err)
		}
		if res.RankCorr < 0.5 {
			t.Fatalf("%s: rank correlation %.3f, want >= 0.5 (model carries no ranking signal)", c.net, res.RankCorr)
		}
	}
}

// TestGuidedCancellation: a pre-cancelled context returns promptly with a
// well-formed partial result.
func TestGuidedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ExploreGuided(mobilenetLayers(t), "mobilenetv1", fpga.S10SX, GuidedOptions{
		Options: Options{Ctx: ctx}, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled {
		t.Fatal("Canceled must be set for a cancelled guided search")
	}
	if res.Evaluated != len(res.Candidates) || len(res.Ranked) != len(res.Candidates) {
		t.Fatalf("partial accounting broken: evaluated=%d candidates=%d ranked=%d",
			res.Evaluated, len(res.Candidates), len(res.Ranked))
	}
}

// TestSpacePointKeyRoundTrip: the canonical key encoding inverts exactly.
func TestSpacePointKeyRoundTrip(t *testing.T) {
	s := BuildSpace(mobilenetLayers(t), "mobilenetv1")
	rng := newRNG(3)
	for i := 0; i < 100; i++ {
		p := randomPoint(s, rng)
		q, err := s.PointFromKey(s.Key(p))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip: %v -> %q -> %v", p, s.Key(p), q)
		}
	}
	if _, err := s.PointFromKey("not.a.key"); err == nil {
		t.Fatal("malformed key must error")
	}
	if _, err := s.PointFromKey("9999.0.0"); err == nil {
		t.Fatal("out-of-range key must error")
	}
}
