// Package schedule implements the loop-nest transformations the thesis applies
// to TVM-generated kernels (Ch. 4/5): loop splitting / strip-mining / tiling,
// reordering, unrolling (pragma annotation), fusion of adjacent loops,
// loop-invariant code motion, and cache-write scope demotion. Like TVM's
// schedule primitives, these are *user-directed*: each primitive checks the
// structural preconditions it can (divisibility, perfect nesting, adjacency,
// invariance) and trusts the schedule author for deeper legality, which the
// interpreter-vs-reference tests then verify numerically.
package schedule

import (
	"fmt"

	"repro/internal/ir"
)

// findLoop returns the For node binding v, or nil.
func findLoop(s ir.Stmt, v *ir.Var) *ir.For {
	var found *ir.For
	ir.WalkStmt(s, func(n ir.Stmt) {
		if f, ok := n.(*ir.For); ok && f.Var == v {
			found = f
		}
	})
	return found
}

// rewrite returns a copy of s where the For binding v has been replaced by
// repl(oldLoop). Nodes outside the path to the loop are shared, not copied.
func rewrite(s ir.Stmt, v *ir.Var, repl func(*ir.For) ir.Stmt) (ir.Stmt, bool) {
	switch x := s.(type) {
	case nil:
		return nil, false
	case *ir.Block:
		for i, c := range x.Stmts {
			if nc, ok := rewrite(c, v, repl); ok {
				out := make([]ir.Stmt, len(x.Stmts))
				copy(out, x.Stmts)
				out[i] = nc
				return &ir.Block{Stmts: out}, true
			}
		}
		return x, false
	case *ir.For:
		if x.Var == v {
			return repl(x), true
		}
		if nb, ok := rewrite(x.Body, v, repl); ok {
			return &ir.For{Var: x.Var, Extent: x.Extent, Body: nb, Unroll: x.Unroll}, true
		}
		return x, false
	case *ir.IfThen:
		if nt, ok := rewrite(x.Then, v, repl); ok {
			return &ir.IfThen{Cond: x.Cond, Then: nt, Else: x.Else}, true
		}
		if ne, ok := rewrite(x.Else, v, repl); ok {
			return &ir.IfThen{Cond: x.Cond, Then: x.Then, Else: ne}, true
		}
		return x, false
	default:
		return x, false
	}
}

// Split strip-mines the loop binding v by factor: `for v in [0,N)` becomes
// `for vo in [0,N/factor) { for vi in [0,factor) }` with v := vo*factor+vi.
// Following the thesis's factor-selection requirement 2 (§4.11), the extent
// must be constant and evenly divisible — no epilogue loops are generated.
// Returns the new body and the outer/inner loop variables.
func Split(body ir.Stmt, v *ir.Var, factor int) (ir.Stmt, *ir.Var, *ir.Var, error) {
	if factor <= 0 {
		return nil, nil, nil, fmt.Errorf("split %s: factor %d must be positive", v.Name, factor)
	}
	loop := findLoop(body, v)
	if loop == nil {
		return nil, nil, nil, fmt.Errorf("split: loop %s not found", v.Name)
	}
	n, ok := ir.IsConst(loop.Extent)
	if !ok {
		return nil, nil, nil, fmt.Errorf("split %s: extent %s is not constant (symbolic loops cannot be strip-mined without an epilogue)", v.Name, loop.Extent)
	}
	if n%int64(factor) != 0 {
		return nil, nil, nil, fmt.Errorf("split %s: extent %d not divisible by factor %d", v.Name, n, factor)
	}
	vo := ir.V(v.Name + "o")
	vi := ir.V(v.Name + "i")
	out, _ := rewrite(body, v, func(f *ir.For) ir.Stmt {
		inner := &ir.For{Var: vi, Extent: ir.CInt(int64(factor)),
			Body: ir.SubstStmt(f.Body, v, ir.AddE(ir.MulE(vo, ir.CInt(int64(factor))), vi))}
		return &ir.For{Var: vo, Extent: ir.CInt(n / int64(factor)), Body: inner}
	})
	return out, vo, vi, nil
}

// Tile strip-mines two loops (the 2-D form of Split, §4.2), returning
// (body, xo, xi, yo, yi).
func Tile(body ir.Stmt, x, y *ir.Var, fx, fy int) (ir.Stmt, *ir.Var, *ir.Var, *ir.Var, *ir.Var, error) {
	b1, xo, xi, err := Split(body, x, fx)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	b2, yo, yi, err := Split(b1, y, fy)
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	return b2, xo, xi, yo, yi, nil
}

// Unroll annotates the loop binding v with an unroll pragma. factor -1 means
// full unroll (#pragma unroll); factor > 1 first splits by factor and fully
// unrolls the inner loop, matching AOC's partial-unroll semantics.
func Unroll(body ir.Stmt, v *ir.Var, factor int) (ir.Stmt, error) {
	loop := findLoop(body, v)
	if loop == nil {
		return nil, fmt.Errorf("unroll: loop %s not found", v.Name)
	}
	if factor == -1 {
		// AOC refuses to fully unroll loops with non-constant bounds (§4.1).
		if _, ok := ir.IsConst(loop.Extent); !ok {
			return nil, fmt.Errorf("unroll %s: cannot fully unroll non-constant extent %s", v.Name, loop.Extent)
		}
		out, _ := rewrite(body, v, func(f *ir.For) ir.Stmt {
			return &ir.For{Var: f.Var, Extent: f.Extent, Body: f.Body, Unroll: -1}
		})
		return out, nil
	}
	if factor <= 1 {
		return nil, fmt.Errorf("unroll %s: bad factor %d", v.Name, factor)
	}
	b, _, vi, err := Split(body, v, factor)
	if err != nil {
		return nil, err
	}
	return Unroll(b, vi, -1)
}

// Reorder permutes a perfectly nested band of loops so that, outermost first,
// they bind order[0], order[1], ... The loops must form a perfect nest (each
// loop's body is exactly the next loop) starting at the loop binding order[0]'s
// current outermost member.
func Reorder(body ir.Stmt, order ...*ir.Var) (ir.Stmt, error) {
	if len(order) < 2 {
		return body, nil
	}
	want := map[*ir.Var]bool{}
	for _, v := range order {
		want[v] = true
	}
	// Find the outermost loop of the band: the first loop in pre-order whose
	// var is in the set.
	var outer *ir.For
	ir.WalkStmt(body, func(n ir.Stmt) {
		if outer != nil {
			return
		}
		if f, ok := n.(*ir.For); ok && want[f.Var] {
			outer = f
		}
	})
	if outer == nil {
		return nil, fmt.Errorf("reorder: no loop of the band found")
	}
	// Collect the perfect nest.
	loops := []*ir.For{outer}
	cur := outer
	for len(loops) < len(order) {
		next, ok := cur.Body.(*ir.For)
		if !ok || !want[next.Var] {
			return nil, fmt.Errorf("reorder: loops are not perfectly nested at %s", cur.Var.Name)
		}
		loops = append(loops, next)
		cur = next
	}
	byVar := map[*ir.Var]*ir.For{}
	for _, f := range loops {
		byVar[f.Var] = f
	}
	for _, v := range order {
		if byVar[v] == nil {
			return nil, fmt.Errorf("reorder: loop %s not in the perfect nest", v.Name)
		}
	}
	innermost := loops[len(loops)-1].Body
	// Rebuild from the inside out in the requested order.
	nest := innermost
	for i := len(order) - 1; i >= 0; i-- {
		f := byVar[order[i]]
		nest = &ir.For{Var: f.Var, Extent: f.Extent, Body: nest, Unroll: f.Unroll}
	}
	out, ok := rewrite(body, outer.Var, func(*ir.For) ir.Stmt { return nest })
	if !ok {
		return nil, fmt.Errorf("reorder: internal rewrite failure")
	}
	return out, nil
}

// FuseAdjacent merges the loop binding v2 into the loop binding v1 (§4.3).
// The two loops must be adjacent statements of the same block and have equal
// constant extents; v2's body is appended to v1's with v2 := v1. There must
// be no backward dependence from the second loop to later iterations of the
// first — as in TVM, the schedule author asserts this.
func FuseAdjacent(body ir.Stmt, v1, v2 *ir.Var) (ir.Stmt, error) {
	var out ir.Stmt
	var applied bool
	var visit func(s ir.Stmt) ir.Stmt
	visit = func(s ir.Stmt) ir.Stmt {
		switch x := s.(type) {
		case *ir.Block:
			for i := 0; i+1 < len(x.Stmts); i++ {
				f1, ok1 := x.Stmts[i].(*ir.For)
				f2, ok2 := x.Stmts[i+1].(*ir.For)
				if ok1 && ok2 && f1.Var == v1 && f2.Var == v2 {
					n1, c1 := ir.IsConst(f1.Extent)
					n2, c2 := ir.IsConst(f2.Extent)
					if !c1 || !c2 || n1 != n2 {
						return x // handled via error below
					}
					fused := &ir.For{Var: f1.Var, Extent: f1.Extent, Unroll: f1.Unroll,
						Body: ir.Seq(f1.Body, ir.SubstStmt(f2.Body, v2, v1))}
					stmts := make([]ir.Stmt, 0, len(x.Stmts)-1)
					stmts = append(stmts, x.Stmts[:i]...)
					stmts = append(stmts, fused)
					stmts = append(stmts, x.Stmts[i+2:]...)
					applied = true
					return ir.Seq(stmts...)
				}
			}
			outStmts := make([]ir.Stmt, len(x.Stmts))
			for i, c := range x.Stmts {
				outStmts[i] = visit(c)
			}
			return ir.Seq(outStmts...)
		case *ir.For:
			return &ir.For{Var: x.Var, Extent: x.Extent, Body: visit(x.Body), Unroll: x.Unroll}
		case *ir.IfThen:
			return &ir.IfThen{Cond: x.Cond, Then: visit(x.Then), Else: visit(x.Else)}
		default:
			return s
		}
	}
	out = visit(body)
	if !applied {
		return nil, fmt.Errorf("fuse: adjacent loops %s,%s with equal constant extents not found", v1.Name, v2.Name)
	}
	return out, nil
}

// HoistInvariant performs loop-invariant code motion (§4.4): statements in
// the body block of the loop binding v that do not reference v are moved in
// front of the loop. Only a leading run of invariant statements is moved, so
// ordering with later variant statements is preserved. The thesis applies
// this to the softmax schedule (Listing 5.7 → 5.8), where the hoisted
// statements are idempotent reductions into [0]-indexed scratchpads.
func HoistInvariant(body ir.Stmt, v *ir.Var) (ir.Stmt, error) {
	loop := findLoop(body, v)
	if loop == nil {
		return nil, fmt.Errorf("licm: loop %s not found", v.Name)
	}
	inner, ok := loop.Body.(*ir.Block)
	if !ok {
		return nil, fmt.Errorf("licm: loop %s body is not a block", v.Name)
	}
	var hoisted []ir.Stmt
	rest := inner.Stmts
	for len(rest) > 0 && !stmtUsesVar(rest[0], v) {
		hoisted = append(hoisted, rest[0])
		rest = rest[1:]
	}
	if len(hoisted) == 0 {
		return nil, fmt.Errorf("licm: no leading invariant statements in loop %s", v.Name)
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("licm: entire loop %s body is invariant; delete the loop instead", v.Name)
	}
	out, _ := rewrite(body, v, func(f *ir.For) ir.Stmt {
		return ir.Seq(append(append([]ir.Stmt{}, hoisted...),
			&ir.For{Var: f.Var, Extent: f.Extent, Body: ir.Seq(rest...), Unroll: f.Unroll})...)
	})
	return out, nil
}

func stmtUsesVar(s ir.Stmt, v *ir.Var) bool {
	used := false
	ir.WalkExprs(s, func(e ir.Expr) {
		if e == ir.Expr(v) {
			used = true
		}
	})
	// A nested loop shadowing v re-binds it; treat shadowed uses as not-uses.
	shadowed := false
	ir.WalkStmt(s, func(n ir.Stmt) {
		if f, ok := n.(*ir.For); ok && f.Var == v {
			shadowed = true
		}
	})
	return used && !shadowed
}

// CacheWrite demotes buffer buf (a global scratchpad in the naive TVM
// schedule) to the given scope (§4.5). All loads/stores keep their shape;
// an Alloc is prepended. The buffer must not be a kernel argument that the
// host reads back — the caller removes it from Args.
func CacheWrite(k *ir.Kernel, buf *ir.Buffer, scope ir.Scope) (*ir.Kernel, error) {
	if scope == ir.Global {
		return nil, fmt.Errorf("cachewrite: target scope must be on-chip")
	}
	found := false
	for _, a := range k.Args {
		if a == buf {
			found = true
		}
	}
	ir.WalkStmt(k.Body, func(s ir.Stmt) {
		if st, ok := s.(*ir.Store); ok && st.Buf == buf {
			found = true
		}
	})
	if !found {
		return nil, fmt.Errorf("cachewrite: buffer %s not used by kernel %s", buf.Name, k.Name)
	}
	// Rebind: same Buffer pointer updated in place would alias other kernels;
	// create a replacement buffer and rewrite references.
	repl := &ir.Buffer{Name: buf.Name + "_c", Shape: buf.Shape, Scope: scope, Elem: buf.Elem}
	newBody := replaceBuffer(k.Body, buf, repl)
	args := make([]*ir.Buffer, 0, len(k.Args))
	for _, a := range k.Args {
		if a != buf {
			args = append(args, a)
		}
	}
	return &ir.Kernel{
		Name: k.Name, Args: args, ScalarArgs: k.ScalarArgs, Autorun: k.Autorun,
		Body: ir.Seq(&ir.Alloc{Buf: repl}, newBody),
	}, nil
}

func replaceBuffer(s ir.Stmt, old, repl *ir.Buffer) ir.Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *ir.Block:
		out := make([]ir.Stmt, len(x.Stmts))
		for i, c := range x.Stmts {
			out[i] = replaceBuffer(c, old, repl)
		}
		return &ir.Block{Stmts: out}
	case *ir.Alloc:
		return x
	case *ir.For:
		return &ir.For{Var: x.Var, Extent: x.Extent, Body: replaceBuffer(x.Body, old, repl), Unroll: x.Unroll}
	case *ir.Store:
		idx := make([]ir.Expr, len(x.Index))
		for i, e := range x.Index {
			idx[i] = replaceBufferExpr(e, old, repl)
		}
		buf := x.Buf
		if buf == old {
			buf = repl
		}
		return &ir.Store{Buf: buf, Index: idx, Value: replaceBufferExpr(x.Value, old, repl)}
	case *ir.ChannelWrite:
		return &ir.ChannelWrite{Ch: x.Ch, Value: replaceBufferExpr(x.Value, old, repl)}
	case *ir.IfThen:
		return &ir.IfThen{Cond: replaceBufferExpr(x.Cond, old, repl),
			Then: replaceBuffer(x.Then, old, repl), Else: replaceBuffer(x.Else, old, repl)}
	}
	// Invariant: exhaustive over ir statement kinds (see aoc/analyze.go).
	panic(fmt.Sprintf("schedule: unknown stmt %T", s))
}

func replaceBufferExpr(e ir.Expr, old, repl *ir.Buffer) ir.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ir.IntImm, *ir.FloatImm, *ir.Var, *ir.ChannelRead:
		return x
	case *ir.Binary:
		return &ir.Binary{Op: x.Op, A: replaceBufferExpr(x.A, old, repl), B: replaceBufferExpr(x.B, old, repl)}
	case *ir.Call:
		args := make([]ir.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = replaceBufferExpr(a, old, repl)
		}
		return &ir.Call{Fn: x.Fn, Args: args}
	case *ir.Load:
		idx := make([]ir.Expr, len(x.Index))
		for i, a := range x.Index {
			idx[i] = replaceBufferExpr(a, old, repl)
		}
		buf := x.Buf
		if buf == old {
			buf = repl
		}
		return &ir.Load{Buf: buf, Index: idx}
	case *ir.Select:
		return &ir.Select{Cond: replaceBufferExpr(x.Cond, old, repl),
			A: replaceBufferExpr(x.A, old, repl), B: replaceBufferExpr(x.B, old, repl)}
	}
	// Invariant: exhaustive over ir expression kinds.
	panic(fmt.Sprintf("schedule: unknown expr %T", e))
}
