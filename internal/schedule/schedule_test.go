package schedule

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/sim"
)

// matvec builds the Listing 4.3 kernel: c[i] = sum_k x[k]*Y[i][k], M×N.
func matvec(m, n int) (*ir.Kernel, *ir.Buffer, *ir.Buffer, *ir.Buffer, *ir.Var, *ir.Var) {
	x := ir.NewBuffer("x", ir.Global, n)
	y := ir.NewBuffer("Y", ir.Global, m, n)
	c := ir.NewBuffer("c", ir.Global, m)
	acc := ir.NewBuffer("sum", ir.Private, 1)
	i, k := ir.V("i"), ir.V("k")
	z := []ir.Expr{ir.CInt(0)}
	body := ir.Seq(
		&ir.Alloc{Buf: acc},
		ir.Loop(i, m, ir.Seq(
			&ir.Store{Buf: acc, Index: z, Value: ir.CFloat(0)},
			ir.Loop(k, n, &ir.Store{Buf: acc, Index: z,
				Value: ir.AddE(&ir.Load{Buf: acc, Index: z},
					ir.MulE(&ir.Load{Buf: x, Index: []ir.Expr{k}}, &ir.Load{Buf: y, Index: []ir.Expr{i, k}}))}),
			&ir.Store{Buf: c, Index: []ir.Expr{i}, Value: &ir.Load{Buf: acc, Index: z}},
		)),
	)
	return &ir.Kernel{Name: "matvec", Args: []*ir.Buffer{x, y, c}, Body: body}, x, y, c, i, k
}

func runMatvec(t *testing.T, k *ir.Kernel, x, y, c *ir.Buffer, m, n int) []float32 {
	t.Helper()
	mach := sim.NewMachine()
	xd := make([]float32, n)
	yd := make([]float32, m*n)
	for i := range xd {
		xd[i] = float32(i%7) - 3
	}
	for i := range yd {
		yd[i] = float32(i%5) - 2
	}
	mach.Bind(x, xd)
	mach.Bind(y, yd)
	mach.Bind(c, make([]float32, m))
	if err := mach.Run(k, nil); err != nil {
		t.Fatal(err)
	}
	return mach.Buffer(c)
}

func TestSplitPreservesSemantics(t *testing.T) {
	k, x, y, c, _, kv := matvec(8, 12)
	ref := append([]float32(nil), runMatvec(t, k, x, y, c, 8, 12)...)

	body, ko, ki, err := Split(k.Body, kv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ko == nil || ki == nil {
		t.Fatal("split returned nil vars")
	}
	k2 := &ir.Kernel{Name: "matvec_s", Args: k.Args, Body: body}
	if err := k2.Validate(); err != nil {
		t.Fatal(err)
	}
	got := runMatvec(t, k2, x, y, c, 8, 12)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("split changed result at %d: %v vs %v", i, ref[i], got[i])
		}
	}
	// Structure: the k loop is gone, ko and ki exist with extents 3 and 4.
	d := ir.Dump(body)
	if !strings.Contains(d, "for ko in [0,3)") || !strings.Contains(d, "for ki in [0,4)") {
		t.Fatalf("split structure wrong:\n%s", d)
	}
}

func TestSplitRejectsNonDivisible(t *testing.T) {
	k, _, _, _, _, kv := matvec(8, 12)
	if _, _, _, err := Split(k.Body, kv, 5); err == nil || !strings.Contains(err.Error(), "divisible") {
		t.Fatalf("want divisibility error, got %v", err)
	}
}

func TestSplitRejectsSymbolic(t *testing.T) {
	n := ir.Param("n")
	out := ir.NewBufferE("out", ir.Global, n)
	i := ir.V("i")
	body := ir.LoopE(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i}, Value: ir.CFloat(0)})
	if _, _, _, err := Split(body, i, 4); err == nil || !strings.Contains(err.Error(), "not constant") {
		t.Fatalf("want symbolic error, got %v", err)
	}
}

func TestSplitMissingLoop(t *testing.T) {
	k, _, _, _, _, _ := matvec(4, 4)
	if _, _, _, err := Split(k.Body, ir.V("ghost"), 2); err == nil {
		t.Fatal("want missing-loop error")
	}
}

func TestUnrollFullAnnotates(t *testing.T) {
	k, _, _, _, _, kv := matvec(8, 12)
	body, err := Unroll(k.Body, kv, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ir.Dump(body), "for k in [0,12) #unroll") {
		t.Fatalf("unroll annotation missing:\n%s", ir.Dump(body))
	}
}

func TestUnrollPartialSplitsThenUnrolls(t *testing.T) {
	k, x, y, c, _, kv := matvec(8, 12)
	ref := append([]float32(nil), runMatvec(t, k, x, y, c, 8, 12)...)
	body, err := Unroll(k.Body, kv, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := ir.Dump(body)
	if !strings.Contains(d, "for ki in [0,4) #unroll") {
		t.Fatalf("partial unroll structure wrong:\n%s", d)
	}
	got := runMatvec(t, &ir.Kernel{Name: "u", Args: k.Args, Body: body}, x, y, c, 8, 12)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatal("partial unroll changed semantics")
		}
	}
}

func TestUnrollRejectsSymbolicFull(t *testing.T) {
	n := ir.Param("n")
	out := ir.NewBufferE("out", ir.Global, n)
	i := ir.V("i")
	body := ir.LoopE(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i}, Value: ir.CFloat(0)})
	if _, err := Unroll(body, i, -1); err == nil {
		t.Fatal("AOC cannot fully unroll non-constant loops; must error")
	}
}

func TestTileAndReorder(t *testing.T) {
	// 2-D init kernel: out[i][j] = i*16+j, tile both dims and reorder.
	out := ir.NewBuffer("out", ir.Global, 8, 16)
	i, j := ir.V("i"), ir.V("j")
	val := ir.AddE(ir.MulE(i, ir.CInt(16)), j)
	// Store float from int expr via Select trick: use IntImm-add; evalF
	// handles IntImm only as literal, so wrap: value = i*16+j computed as
	// float by multiplying loads? Simplest: store 1.0 and check count... but
	// we want positional data. Use Select(cond,1,0): skip — instead store
	// float(i)*16+float(j) using float ops over int vars is not typed; so
	// build value = (i*16+j) as int expr stored via Store, which evalF
	// rejects. Use a float immediates trick: out[i][j] = sum of indicator
	// loads is overkill. We instead validate reorder on the matvec kernel.
	_ = val
	body := ir.Loop(i, 8, ir.Loop(j, 16, &ir.Store{Buf: out, Index: []ir.Expr{i, j}, Value: ir.CFloat(1)}))
	b2, io, ii, jo, ji, err := Tile(body, i, j, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := Reorder(b2, io, jo, ii, ji)
	if err != nil {
		t.Fatal(err)
	}
	mach := sim.NewMachine()
	mach.Bind(out, make([]float32, 8*16))
	if err := mach.Run(&ir.Kernel{Name: "t", Args: []*ir.Buffer{out}, Body: b3}, nil); err != nil {
		t.Fatal(err)
	}
	for idx, v := range mach.Buffer(out) {
		if v != 1 {
			t.Fatalf("element %d not covered after tile+reorder", idx)
		}
	}
	d := ir.Dump(b3)
	// Outermost loop must now be io, then jo.
	if strings.Index(d, "for io") > strings.Index(d, "for jo") {
		t.Fatalf("reorder did not place io before jo:\n%s", d)
	}
}

func TestReorderRejectsImperfectNest(t *testing.T) {
	k, _, _, _, iv, kv := matvec(4, 4)
	// matvec's i-loop body has 3 statements, so (i,k) is not a perfect nest.
	if _, err := Reorder(k.Body, kv, iv); err == nil {
		t.Fatal("want imperfect-nest error")
	}
}

func TestFuseAdjacent(t *testing.T) {
	// Listing 4.6 shape: loop1 computes scratch[i], loop2 applies relu into out.
	scratch := ir.NewBuffer("scratch", ir.Global, 8)
	in := ir.NewBuffer("in", ir.Global, 8)
	out := ir.NewBuffer("out", ir.Global, 8)
	i, j := ir.V("i"), ir.V("j")
	body := ir.Seq(
		ir.Loop(i, 8, &ir.Store{Buf: scratch, Index: []ir.Expr{i},
			Value: ir.MulE(&ir.Load{Buf: in, Index: []ir.Expr{i}}, ir.CFloat(2))}),
		ir.Loop(j, 8, &ir.Store{Buf: out, Index: []ir.Expr{j},
			Value: ir.MaxE(&ir.Load{Buf: scratch, Index: []ir.Expr{j}}, ir.CFloat(0))}),
	)
	fused, err := FuseAdjacent(body, i, j)
	if err != nil {
		t.Fatal(err)
	}
	// One loop remains.
	loops := 0
	ir.WalkStmt(fused, func(s ir.Stmt) {
		if _, ok := s.(*ir.For); ok {
			loops++
		}
	})
	if loops != 1 {
		t.Fatalf("fused body has %d loops, want 1:\n%s", loops, ir.Dump(fused))
	}
	mach := sim.NewMachine()
	ind := []float32{-1, 2, -3, 4, -5, 6, -7, 8}
	mach.Bind(in, ind)
	mach.Bind(scratch, make([]float32, 8))
	mach.Bind(out, make([]float32, 8))
	k := &ir.Kernel{Name: "f", Args: []*ir.Buffer{scratch, in, out}, Body: fused}
	if err := mach.Run(k, nil); err != nil {
		t.Fatal(err)
	}
	for idx, v := range mach.Buffer(out) {
		want := float32(0)
		if ind[idx] > 0 {
			want = ind[idx] * 2
		}
		if v != want {
			t.Fatalf("out[%d] = %v, want %v", idx, v, want)
		}
	}
}

func TestFuseRejectsUnequalExtents(t *testing.T) {
	a := ir.NewBuffer("a", ir.Global, 8)
	i, j := ir.V("i"), ir.V("j")
	body := ir.Seq(
		ir.Loop(i, 8, &ir.Store{Buf: a, Index: []ir.Expr{i}, Value: ir.CFloat(0)}),
		ir.Loop(j, 4, &ir.Store{Buf: a, Index: []ir.Expr{j}, Value: ir.CFloat(1)}),
	)
	if _, err := FuseAdjacent(body, i, j); err == nil {
		t.Fatal("want unequal-extent error")
	}
}

func TestHoistInvariant(t *testing.T) {
	// Listing 4.8 shape: per-iteration recomputation of a max.
	a := ir.NewBuffer("a", ir.Global, 16)
	b := ir.NewBuffer("b", ir.Global, 16)
	amax := ir.NewBuffer("a_max", ir.Private, 1)
	i, j := ir.V("i"), ir.V("j")
	z := []ir.Expr{ir.CInt(0)}
	inner := ir.Seq(
		&ir.Store{Buf: amax, Index: z, Value: ir.CFloat(-9.9e37)},
		ir.Loop(j, 16, &ir.Store{Buf: amax, Index: z,
			Value: ir.MaxE(&ir.Load{Buf: amax, Index: z}, &ir.Load{Buf: a, Index: []ir.Expr{j}})}),
		&ir.Store{Buf: b, Index: []ir.Expr{i},
			Value: ir.DivE(&ir.Load{Buf: a, Index: []ir.Expr{i}}, &ir.Load{Buf: amax, Index: z})},
	)
	body := ir.Seq(&ir.Alloc{Buf: amax}, ir.Loop(i, 16, inner))
	k := &ir.Kernel{Name: "norm", Args: []*ir.Buffer{a, b}, Body: body}

	mach := sim.NewMachine()
	ad := make([]float32, 16)
	for x := range ad {
		ad[x] = float32(x + 1)
	}
	mach.Bind(a, ad)
	mach.Bind(b, make([]float32, 16))
	if err := mach.Run(k, nil); err != nil {
		t.Fatal(err)
	}
	ref := append([]float32(nil), mach.Buffer(b)...)

	hoisted, err := HoistInvariant(body, i)
	if err != nil {
		t.Fatal(err)
	}
	// The j loop must now appear before the i loop.
	d := ir.Dump(hoisted)
	if strings.Index(d, "for j") > strings.Index(d, "for i in") {
		t.Fatalf("licm did not hoist:\n%s", d)
	}
	mach2 := sim.NewMachine()
	mach2.Bind(a, ad)
	mach2.Bind(b, make([]float32, 16))
	if err := mach2.Run(&ir.Kernel{Name: "norm2", Args: k.Args, Body: hoisted}, nil); err != nil {
		t.Fatal(err)
	}
	for x := range ref {
		if ref[x] != mach2.Buffer(b)[x] {
			t.Fatalf("licm changed semantics at %d", x)
		}
	}
}

func TestHoistRejectsVariantLead(t *testing.T) {
	a := ir.NewBuffer("a", ir.Global, 4)
	i := ir.V("i")
	body := ir.Loop(i, 4, ir.Seq(
		&ir.Store{Buf: a, Index: []ir.Expr{i}, Value: ir.CFloat(1)},
	))
	if _, err := HoistInvariant(body, i); err == nil {
		t.Fatal("want no-invariant error")
	}
}

func TestCacheWriteDemotesScratchpad(t *testing.T) {
	k, x, y, c, _, _ := matvec(8, 12)
	ref := append([]float32(nil), runMatvec(t, k, x, y, c, 8, 12)...)
	// matvec's acc is already private; build a variant with a global
	// scratchpad argument as naive TVM emits.
	scratch := ir.NewBuffer("scratchpad", ir.Global, 1)
	i2, k2 := ir.V("i"), ir.V("k")
	z := []ir.Expr{ir.CInt(0)}
	naive := &ir.Kernel{Name: "mv_naive", Args: []*ir.Buffer{scratch, x, y, c},
		Body: ir.Loop(i2, 8, ir.Seq(
			&ir.Store{Buf: scratch, Index: z, Value: ir.CFloat(0)},
			ir.Loop(k2, 12, &ir.Store{Buf: scratch, Index: z,
				Value: ir.AddE(&ir.Load{Buf: scratch, Index: z},
					ir.MulE(&ir.Load{Buf: x, Index: []ir.Expr{k2}}, &ir.Load{Buf: y, Index: []ir.Expr{i2, k2}}))}),
			&ir.Store{Buf: c, Index: []ir.Expr{i2}, Value: &ir.Load{Buf: scratch, Index: z}},
		))}
	cached, err := CacheWrite(naive, scratch, ir.Private)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Args) != 3 {
		t.Fatalf("scratchpad still an argument: %d args", len(cached.Args))
	}
	if err := cached.Validate(); err != nil {
		t.Fatal(err)
	}
	got := runMatvec(t, cached, x, y, c, 8, 12)
	for idx := range ref {
		if ref[idx] != got[idx] {
			t.Fatal("cachewrite changed semantics")
		}
	}
	// Exactly one private alloc now exists.
	allocs := cached.Allocs()
	if len(allocs) != 1 || allocs[0].Scope != ir.Private {
		t.Fatalf("allocs = %v", allocs)
	}
}

func TestCacheWriteUnknownBuffer(t *testing.T) {
	k, _, _, _, _, _ := matvec(4, 4)
	ghost := ir.NewBuffer("ghost", ir.Global, 1)
	if _, err := CacheWrite(k, ghost, ir.Private); err == nil {
		t.Fatal("want unknown-buffer error")
	}
}

// Property: Split by any valid divisor preserves matvec results.
func TestQuickSplitDivisors(t *testing.T) {
	f := func(sel uint8) bool {
		divisors := []int{1, 2, 3, 4, 6, 12}
		d := divisors[int(sel)%len(divisors)]
		k, x, y, c, _, kv := matvec(4, 12)
		mach := sim.NewMachine()
		xd, yd := make([]float32, 12), make([]float32, 48)
		for i := range xd {
			xd[i] = float32(i) - 5
		}
		for i := range yd {
			yd[i] = float32(i%9) - 4
		}
		mach.Bind(x, xd)
		mach.Bind(y, yd)
		mach.Bind(c, make([]float32, 4))
		if err := mach.Run(k, nil); err != nil {
			return false
		}
		ref := append([]float32(nil), mach.Buffer(c)...)

		body, _, _, err := Split(k.Body, kv, d)
		if err != nil {
			return false
		}
		mach2 := sim.NewMachine()
		mach2.Bind(x, xd)
		mach2.Bind(y, yd)
		mach2.Bind(c, make([]float32, 4))
		if err := mach2.Run(&ir.Kernel{Name: "q", Args: k.Args, Body: body}, nil); err != nil {
			return false
		}
		for i := range ref {
			if ref[i] != mach2.Buffer(c)[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUnrollByName(t *testing.T) {
	k, _, _, _, _, _ := matvec(8, 12)
	body, err := UnrollByName(k.Body, "k", -1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ir.Dump(body), "#unroll") {
		t.Fatal("UnrollByName did not annotate")
	}
	if _, err := UnrollByName(k.Body, "nosuch", -1); err == nil {
		t.Fatal("missing loop name must error")
	}
	if v := FindLoopVar(k.Body, "i"); v == nil || v.Name != "i" {
		t.Fatal("FindLoopVar failed")
	}
	if FindLoopVar(k.Body, "zz") != nil {
		t.Fatal("FindLoopVar must return nil for unknown names")
	}
}
