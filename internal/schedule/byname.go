package schedule

import (
	"fmt"

	"repro/internal/ir"
)

// FindLoopVar returns the loop variable of the first loop named name in
// pre-order, or nil. Schedules built by topi use stable iterator names
// (ax1, yy, xx, rc, ry, rx, k, ...), which is how the thesis's hand-applied
// transformations address loops in generated kernels.
func FindLoopVar(body ir.Stmt, name string) *ir.Var {
	var found *ir.Var
	ir.WalkStmt(body, func(s ir.Stmt) {
		if found != nil {
			return
		}
		if f, ok := s.(*ir.For); ok && f.Var.Name == name {
			found = f.Var
		}
	})
	return found
}

// UnrollByName unrolls the loop with the given iterator name: factor -1
// fully unrolls, factor > 1 strip-mines then unrolls the inner loop.
func UnrollByName(body ir.Stmt, name string, factor int) (ir.Stmt, error) {
	v := FindLoopVar(body, name)
	if v == nil {
		return nil, fmt.Errorf("schedule: no loop named %q", name)
	}
	return Unroll(body, v, factor)
}
