package schedule

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/sim"
)

func TestCacheReadPreservesSemantics(t *testing.T) {
	k, x, y, c, _, _ := matvec(8, 12)
	ref := append([]float32(nil), runMatvec(t, k, x, y, c, 8, 12)...)

	staged, err := CacheRead(k, x, ir.Local)
	if err != nil {
		t.Fatal(err)
	}
	if err := staged.Validate(); err != nil {
		t.Fatal(err)
	}
	got := runMatvec(t, staged, x, y, c, 8, 12)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatal("cacheread changed semantics")
		}
	}
	// The staged kernel loads x from global memory exactly once per element:
	// only the prologue copy references the original buffer.
	loads := 0
	ir.WalkExprs(staged.Body, func(e ir.Expr) {
		if l, ok := e.(*ir.Load); ok && l.Buf == x {
			loads++
		}
	})
	if loads != 1 {
		t.Fatalf("original buffer referenced %d times, want 1 (the copy loop)", loads)
	}
	// A local alloc was introduced.
	found := false
	for _, b := range staged.Allocs() {
		if b.Scope == ir.Local && strings.HasSuffix(b.Name, "_lc") {
			found = true
		}
	}
	if !found {
		t.Fatal("missing local staging buffer")
	}
}

func TestCacheReadChainsWithWeights(t *testing.T) {
	// Stage both inputs, as the thesis does for I and W.
	k, x, y, c, _, _ := matvec(4, 8)
	ref := append([]float32(nil), runMatvec(t, k, x, y, c, 4, 8)...)
	s1, err := CacheRead(k, x, ir.Local)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := CacheRead(s1, y, ir.Local)
	if err != nil {
		t.Fatal(err)
	}
	got := runMatvec(t, s2, x, y, c, 4, 8)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatal("double cacheread changed semantics")
		}
	}
}

func TestCacheReadRejectsWrittenBuffer(t *testing.T) {
	k, _, _, c, _, _ := matvec(4, 8)
	if _, err := CacheRead(k, c, ir.Local); err == nil ||
		!strings.Contains(err.Error(), "writes") {
		t.Fatalf("want written-buffer rejection, got %v", err)
	}
}

func TestCacheReadRejectsNonArgument(t *testing.T) {
	k, _, _, _, _, _ := matvec(4, 8)
	ghost := ir.NewBuffer("ghost", ir.Global, 4)
	if _, err := CacheRead(k, ghost, ir.Local); err == nil {
		t.Fatal("want non-argument rejection")
	}
}

func TestCacheReadRejectsSymbolic(t *testing.T) {
	n := ir.Param("n")
	in := ir.NewBufferE("in", ir.Global, n)
	out := ir.NewBufferE("out", ir.Global, n)
	i := ir.V("i")
	k := &ir.Kernel{Name: "sym", Args: []*ir.Buffer{in, out}, ScalarArgs: []*ir.Var{n},
		Body: ir.LoopE(i, n, &ir.Store{Buf: out, Index: []ir.Expr{i}, Value: &ir.Load{Buf: in, Index: []ir.Expr{i}}})}
	if _, err := CacheRead(k, in, ir.Local); err == nil ||
		!strings.Contains(err.Error(), "symbolic") {
		t.Fatalf("want symbolic rejection, got %v", err)
	}
}

func TestCacheReadRejectsGlobalTarget(t *testing.T) {
	k, x, _, _, _, _ := matvec(4, 8)
	if _, err := CacheRead(k, x, ir.Global); err == nil {
		t.Fatal("want on-chip-scope requirement")
	}
}

// Functional check through the interpreter that the staged buffer is truly
// local: the machine must not require extra bindings.
func TestCacheReadInterpreterIntegration(t *testing.T) {
	k, x, y, c, _, _ := matvec(4, 8)
	staged, err := CacheRead(k, y, ir.Local)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine()
	m.Bind(x, make([]float32, 8))
	m.Bind(y, make([]float32, 32))
	m.Bind(c, make([]float32, 4))
	if err := m.Run(staged, nil); err != nil {
		t.Fatal(err)
	}
}
