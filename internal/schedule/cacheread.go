package schedule

import (
	"fmt"

	"repro/internal/ir"
)

// CacheRead implements the read-cache staging of §5.1.1 ("we create read
// caches for I and W"): a global buffer is copied into an on-chip buffer by
// a prologue loop nest, and every subsequent load is redirected to the
// on-chip copy. The buffer must have constant extents (the copy loop bounds
// are materialized); symbolic-shape kernels rely on AOC's inferred caches
// instead (§2.4.3), which the aoc model handles.
//
// The transformation applies to kernels that only *read* buf; staging a
// buffer that the kernel writes would change memory visibility.
func CacheRead(k *ir.Kernel, buf *ir.Buffer, scope ir.Scope) (*ir.Kernel, error) {
	if scope == ir.Global {
		return nil, fmt.Errorf("cacheread: target scope must be on-chip")
	}
	if buf.Scope != ir.Global && buf.Scope != ir.Constant {
		return nil, fmt.Errorf("cacheread: %s is already on-chip", buf.Name)
	}
	isArg := false
	for _, a := range k.Args {
		if a == buf {
			isArg = true
		}
	}
	if !isArg {
		return nil, fmt.Errorf("cacheread: buffer %s is not an argument of kernel %s", buf.Name, k.Name)
	}
	written := false
	read := false
	ir.WalkStmt(k.Body, func(s ir.Stmt) {
		if st, ok := s.(*ir.Store); ok && st.Buf == buf {
			written = true
		}
	})
	ir.WalkExprs(k.Body, func(e ir.Expr) {
		if l, ok := e.(*ir.Load); ok && l.Buf == buf {
			read = true
		}
	})
	if written {
		return nil, fmt.Errorf("cacheread: kernel %s writes %s; only read-only buffers can be staged", k.Name, buf.Name)
	}
	if !read {
		return nil, fmt.Errorf("cacheread: kernel %s never reads %s", k.Name, buf.Name)
	}
	dims := make([]int, len(buf.Shape))
	for i, d := range buf.Shape {
		n, ok := ir.IsConst(d)
		if !ok {
			return nil, fmt.Errorf("cacheread: %s has symbolic extents; rely on AOC's inferred caches instead", buf.Name)
		}
		dims[i] = int(n)
	}

	local := &ir.Buffer{Name: buf.Name + "_lc", Shape: buf.Shape, Scope: scope, Elem: buf.Elem}
	// Prologue copy nest: local[idx...] = buf[idx...].
	vars := make([]*ir.Var, len(dims))
	idx := make([]ir.Expr, len(dims))
	for i := range dims {
		vars[i] = ir.V(fmt.Sprintf("cr%d", i))
		idx[i] = vars[i]
	}
	copyStmt := ir.Stmt(&ir.Store{Buf: local, Index: idx, Value: &ir.Load{Buf: buf, Index: idx}})
	for i := len(dims) - 1; i >= 0; i-- {
		copyStmt = ir.Loop(vars[i], dims[i], copyStmt)
	}

	// Redirect every load of buf to the local copy; stores were excluded.
	body := replaceBuffer(k.Body, buf, local)
	return &ir.Kernel{
		Name: k.Name, Args: k.Args, ScalarArgs: k.ScalarArgs, Autorun: k.Autorun,
		Body: ir.Seq(&ir.Alloc{Buf: local}, copyStmt, body),
	}, nil
}
