package serve

// The batcher state machine. The engine is deliberately single-threaded and
// clockless: every entry point takes an explicit nowUS, and the owner
// serializes calls (the HTTP server with a mutex, the simulation by being
// single-threaded). That keeps one implementation of admission, batch
// formation, shedding and drain shared between the deterministic virtual
// clock and the wall clock, and makes every edge case unit-testable without
// sleeping.
//
// Formation policy (documented in DESIGN.md): a batch dispatches when a
// worker is free AND (pending >= BatchN, or the oldest pending request has
// waited DeadlineUS, or the server is draining). A free worker with a
// partial batch whose deadline has not fired waits — classic N-or-T dynamic
// batching, not work-stealing.

import (
	"fmt"

	"repro/internal/trace"
)

// engine owns the pending queue, the per-tenant admission counts and the
// worker free-list. Not safe for concurrent use; owners serialize.
type engine struct {
	cfg Config
	tc  *trace.Collector
	// dispatch hands a formed batch to the frontend. Called with a worker
	// already reserved, so frontends never block in it.
	dispatch func(*Batch)

	pending  []*Request
	queued   map[string]int // queued (not yet dispatched) requests per tenant
	freeW    []int          // free worker ids, LIFO
	inflight int            // dispatched, not yet completed requests
	draining bool
	nextID   int64
	batchSeq int

	accepted  int64
	completed int64
}

func newEngine(cfg Config, tc *trace.Collector, dispatch func(*Batch)) *engine {
	e := &engine{cfg: cfg, tc: tc, dispatch: dispatch, queued: map[string]int{}}
	for w := cfg.Workers - 1; w >= 0; w-- {
		e.freeW = append(e.freeW, w)
	}
	return e
}

// submit admits or sheds one request. On admission the request joins the
// pending queue (arrival order across tenants) and the formation policy is
// re-evaluated.
func (e *engine) submit(req *Request, nowUS float64) ShedReason {
	m := e.tc.Metrics()
	m.Counter("serve.requests").Inc()
	e.nextID++
	req.ID = e.nextID
	if reason := e.admit(req); reason != ShedNone {
		m.Counter("serve.shed." + reason.String()).Inc()
		e.tc.Instant("serve", "shed", reason.String(), "shed", nowUS,
			map[string]string{"tenant": req.Tenant})
		return reason
	}
	req.ArriveUS = nowUS
	e.pending = append(e.pending, req)
	e.queued[req.Tenant]++
	e.accepted++
	m.Counter("serve.accepted").Inc()
	m.Gauge("serve.queue_depth").Set(float64(len(e.pending)))
	e.poll(nowUS)
	return ShedNone
}

func (e *engine) admit(req *Request) ShedReason {
	if e.draining {
		return ShedDraining
	}
	if len(e.pending) >= e.cfg.MaxPending {
		return ShedOverload
	}
	if e.queued[req.Tenant] >= e.cfg.TenantQueue {
		return ShedTenantQueue
	}
	return ShedNone
}

// poll re-evaluates the formation policy: dispatch batches while a worker is
// free and the N-or-T (or drain-flush) condition holds.
func (e *engine) poll(nowUS float64) {
	for len(e.freeW) > 0 && len(e.pending) > 0 {
		if len(e.pending) < e.cfg.BatchN && !e.draining &&
			nowUS < e.pending[0].ArriveUS+e.cfg.DeadlineUS {
			break // partial batch, deadline still running: wait
		}
		k := min(len(e.pending), e.cfg.BatchN)
		reqs := make([]*Request, k)
		copy(reqs, e.pending[:k])
		rest := e.pending[k:]
		// Drop the dispatched prefix without retaining pointers.
		copy(e.pending, rest)
		for i := len(rest); i < len(e.pending); i++ {
			e.pending[i] = nil
		}
		e.pending = e.pending[:len(rest)]
		w := e.freeW[len(e.freeW)-1]
		e.freeW = e.freeW[:len(e.freeW)-1]
		for _, r := range reqs {
			e.queued[r.Tenant]--
		}
		e.batchSeq++
		e.inflight += k
		b := &Batch{Seq: e.batchSeq, Reqs: reqs, FormedUS: nowUS, Worker: w}
		m := e.tc.Metrics()
		m.Counter("serve.batches").Inc()
		m.Histogram("serve.batch_fill").Observe(float64(k) / float64(e.cfg.BatchN))
		m.Gauge("serve.queue_depth").Set(float64(len(e.pending)))
		e.dispatch(b)
	}
}

// nextDeadline reports when poll must be re-invoked even without new events:
// the oldest pending request's formation deadline, if a worker is free to
// take the partial batch. ok=false means no timer is needed.
func (e *engine) nextDeadline() (atUS float64, ok bool) {
	if len(e.freeW) == 0 || len(e.pending) == 0 || e.draining {
		return 0, false
	}
	return e.pending[0].ArriveUS + e.cfg.DeadlineUS, true
}

// cancel removes a still-queued request (client disconnect). Returns false
// when the request is already dispatched or finished — it will complete
// normally and the response goes to its done callback as usual.
func (e *engine) cancel(req *Request, nowUS float64) bool {
	for i, r := range e.pending {
		if r != req {
			continue
		}
		e.pending = append(e.pending[:i], e.pending[i+1:]...)
		e.queued[req.Tenant]--
		m := e.tc.Metrics()
		m.Counter("serve.canceled").Inc()
		m.Gauge("serve.queue_depth").Set(float64(len(e.pending)))
		e.respond(req, Response{
			ID: req.ID, Tenant: req.Tenant, ArgMax: -1,
			LatencyUS: nowUS - req.ArriveUS, Err: ErrCanceled,
		})
		return true
	}
	return false
}

// complete retires a dispatched batch: per-request responses with latency
// decomposition and rung accounting, worker back to the free list, and a
// formation re-poll (a freed worker may unblock the next batch).
func (e *engine) complete(b *Batch, out *BatchOutcome, nowUS float64) {
	m := e.tc.Metrics()
	for i, req := range b.Reqs {
		oc := out.Outcomes[i]
		resp := Response{
			ID: req.ID, Tenant: req.Tenant, ArgMax: oc.ArgMax, Rung: oc.Rung,
			BatchSize: len(b.Reqs),
			QueueUS:   b.FormedUS - req.ArriveUS,
			ServiceUS: nowUS - b.FormedUS,
			LatencyUS: nowUS - req.ArriveUS,
			Err:       oc.Err,
		}
		e.completed++
		m.Counter("serve.completed").Inc()
		m.Counter("serve.rung." + oc.Rung).Inc()
		if oc.Err != nil {
			m.Counter("serve.errors").Inc()
		}
		m.Histogram("serve.latency_us").Observe(resp.LatencyUS)
		m.Histogram("serve.queue_us").Observe(resp.QueueUS)
		e.respond(req, resp)
	}
	m.Counter("serve.retries").Add(int64(out.Retries))
	m.Counter("serve.faults").Add(int64(out.Faults))
	if out.Degraded > 0 {
		m.Counter("serve.batch_failures").Inc()
	}
	e.tc.Add(trace.Span{
		Proc: "serve", Track: fmt.Sprintf("worker %d", b.Worker),
		Name: fmt.Sprintf("batch %d", b.Seq), Cat: "batch",
		StartUS: b.FormedUS, DurUS: nowUS - b.FormedUS,
		Args: map[string]string{
			"size": fmt.Sprintf("%d", len(b.Reqs)),
			"fill": fmt.Sprintf("%.2f", float64(len(b.Reqs))/float64(e.cfg.BatchN)),
		},
	})
	e.inflight -= len(b.Reqs)
	e.freeW = append(e.freeW, b.Worker)
	m.Gauge("serve.inflight").Set(float64(e.inflight))
	e.poll(nowUS)
}

func (e *engine) respond(req *Request, resp Response) {
	if req.done != nil {
		req.done(resp)
	}
}

// beginDrain stops admission and flushes partial batches immediately: queued
// and in-flight requests all complete, nothing is dropped. Idempotent.
func (e *engine) beginDrain(nowUS float64) {
	if e.draining {
		return
	}
	e.draining = true
	e.tc.Metrics().Counter("serve.drain.begun").Inc()
	e.tc.Instant("serve", "lifecycle", "drain", "lifecycle", nowUS, nil)
	e.poll(nowUS)
}

// idle reports whether nothing is queued or in flight — during a drain this
// is the all-clear to shut down.
func (e *engine) idle() bool { return len(e.pending) == 0 && e.inflight == 0 }

// drainDropped is the number of requests a finished drain abandoned. The
// zero-drop contract says this is always 0; serve-smoke asserts it.
func (e *engine) drainDropped() int {
	if !e.draining {
		return 0
	}
	return len(e.pending) + e.inflight
}
