package loadgen

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// echoRunner is a minimal deterministic Runner: fixed service time, rung
// RungBatch, argmax 0.
type echoRunner struct{ serviceUS float64 }

func (e echoRunner) Run(b *serve.Batch) *serve.BatchOutcome {
	out := &serve.BatchOutcome{ServiceUS: e.serviceUS}
	for range b.Reqs {
		out.Outcomes = append(out.Outcomes, serve.Outcome{ArgMax: 0, Rung: serve.RungBatch})
	}
	return out
}

func testProfile(seed int64) Profile {
	return Profile{
		Seed:   seed,
		Stages: []Stage{{QPS: 1000, DurUS: 100_000}, {QPS: 4000, DurUS: 50_000}},
		Tenants: []Tenant{
			{Name: "alpha", Weight: 0.7},
			{Name: "beta", Weight: 0.3},
		},
	}
}

func TestArrivalsDeterministicAndSorted(t *testing.T) {
	in := func(i int) *tensor.Tensor { return nil }
	a := testProfile(7).Arrivals(in)
	b := testProfile(7).Arrivals(in)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].AtUS != b[i].AtUS || a[i].Tenant != b[i].Tenant {
			t.Fatalf("arrival %d differs across identical seeds", i)
		}
		if i > 0 && a[i].AtUS < a[i-1].AtUS {
			t.Fatalf("arrivals out of order at %d", i)
		}
		if a[i].AtUS >= testProfile(7).TotalUS() {
			t.Fatalf("arrival %d past the ramp end", i)
		}
	}
	c := testProfile(8).Arrivals(in)
	if len(c) == len(a) && c[0].AtUS == a[0].AtUS {
		t.Fatal("different seeds produced the same stream")
	}
}

// The Poisson process should land near the configured rate: 1000*0.1s +
// 4000*0.05s = 300 expected arrivals; allow a generous stochastic band.
func TestArrivalsMatchOfferedRate(t *testing.T) {
	a := testProfile(3).Arrivals(func(i int) *tensor.Tensor { return nil })
	if n := len(a); math.Abs(float64(n)-300) > 60 {
		t.Fatalf("got %d arrivals, expected about 300", n)
	}
	alpha := 0
	for _, ar := range a {
		if ar.Tenant == "alpha" {
			alpha++
		}
	}
	if frac := float64(alpha) / float64(len(a)); frac < 0.5 || frac > 0.9 {
		t.Fatalf("alpha fraction %.2f, expected near 0.7", frac)
	}
}

// The whole load path — arrivals, simulated engine, summary — must be
// byte-identical across two runs with the same seed. JSON is the level the
// CI bench gates diff at, so that is where identity is asserted.
func TestSeededRunByteIdentical(t *testing.T) {
	run := func() []byte {
		prof := testProfile(11)
		cfg := serve.Config{BatchN: 4, DeadlineUS: 400, Workers: 2}
		tc := trace.NewCollector()
		res := serve.RunSim(cfg, echoRunner{serviceUS: 180}, prof.Arrivals(func(i int) *tensor.Tensor { return nil }), tc)
		sum := Summarize(prof, res, tc.Metrics())
		b, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different summary bytes:\n%s\n%s", a, b)
	}
	var sum Summary
	if err := json.Unmarshal(a, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Completed == 0 || sum.DrainDropped != 0 {
		t.Fatalf("summary implausible: completed=%d dropped=%d", sum.Completed, sum.DrainDropped)
	}
}

// Zero-duration stages contribute no arrivals and no weight; a ramp made
// entirely of them offers nothing without dividing by zero anywhere.
func TestZeroDurationStage(t *testing.T) {
	prof := Profile{
		Seed:    5,
		Stages:  []Stage{{QPS: 1000, DurUS: 0}, {QPS: 2000, DurUS: 50_000}, {QPS: 9999, DurUS: 0}},
		Tenants: []Tenant{{Name: "solo", Weight: 1}},
	}
	a := prof.Arrivals(func(i int) *tensor.Tensor { return nil })
	if len(a) == 0 {
		t.Fatal("non-empty middle stage produced no arrivals")
	}
	if got := prof.TotalUS(); got != 50_000 {
		t.Fatalf("TotalUS = %v, want 50000", got)
	}
	if got := prof.OfferedQPS(); got != 2000 {
		t.Fatalf("OfferedQPS = %v, want 2000 (zero-duration stages carry no weight)", got)
	}
	for i, ar := range a {
		if ar.AtUS >= 50_000 {
			t.Fatalf("arrival %d at %v lies beyond the only real stage", i, ar.AtUS)
		}
	}

	empty := Profile{Seed: 5, Stages: []Stage{{QPS: 1000, DurUS: 0}}, Tenants: prof.Tenants}
	if got := empty.Arrivals(func(i int) *tensor.Tensor { return nil }); len(got) != 0 {
		t.Fatalf("all-zero ramp produced %d arrivals", len(got))
	}
	if got := empty.OfferedQPS(); got != 0 {
		t.Fatalf("all-zero ramp OfferedQPS = %v, want 0", got)
	}
	res := serve.RunSim(serve.Config{BatchN: 4, DeadlineUS: 400, Workers: 1},
		echoRunner{serviceUS: 100}, empty.Arrivals(func(i int) *tensor.Tensor { return nil }), trace.NewCollector())
	sum := Summarize(empty, res, trace.NewCollector().Metrics())
	if sum.Offered != 0 || sum.Completed != 0 || sum.SustainedQPS != 0 {
		t.Fatalf("empty run summary not all-zero: %+v", sum)
	}
	if math.IsNaN(sum.ShedRate) || math.IsNaN(sum.MeanUS) || math.IsNaN(sum.P99US) {
		t.Fatal("empty run summary contains NaN")
	}
}

// A single request must survive the full pipeline: accepted, dispatched as
// a partial deadline batch, and summarized with all percentiles collapsing
// onto its one latency.
func TestSingleRequestRun(t *testing.T) {
	prof := Profile{Seed: 1, Stages: []Stage{{QPS: 1, DurUS: 1}}, Tenants: []Tenant{{Name: "solo", Weight: 1}}}
	arrivals := []serve.Arrival{{AtUS: 0, Tenant: "solo"}}
	tc := trace.NewCollector()
	res := serve.RunSim(serve.Config{BatchN: 8, DeadlineUS: 500, Workers: 1}, echoRunner{serviceUS: 70}, arrivals, tc)
	sum := Summarize(prof, res, tc.Metrics())
	if sum.Offered != 1 || sum.Accepted != 1 || sum.Completed != 1 {
		t.Fatalf("offered/accepted/completed = %d/%d/%d, want 1/1/1", sum.Offered, sum.Accepted, sum.Completed)
	}
	if sum.DrainDropped != 0 || sum.ShedCount != 0 {
		t.Fatalf("dropped=%d shed=%d, want 0,0", sum.DrainDropped, sum.ShedCount)
	}
	if sum.P50US != sum.P99US || sum.P50US != sum.MaxUS || sum.P50US != sum.MeanUS || sum.P50US <= 0 {
		t.Fatalf("single-sample percentiles disagree: p50=%v p99=%v max=%v mean=%v",
			sum.P50US, sum.P99US, sum.MaxUS, sum.MeanUS)
	}
	if sum.Batches != 1 || sum.BatchFill <= 0 {
		t.Fatalf("batches=%d fill=%v, want one partial batch", sum.Batches, sum.BatchFill)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		q, want float64
	}{{0.5, 20}, {0.99, 40}, {0.25, 10}, {1, 40}}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); got != c.want {
			t.Fatalf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty slice should yield 0")
	}
}
