package loadgen

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func testProfile(seed int64) Profile {
	return Profile{
		Seed:   seed,
		Stages: []Stage{{QPS: 1000, DurUS: 100_000}, {QPS: 4000, DurUS: 50_000}},
		Tenants: []Tenant{
			{Name: "alpha", Weight: 0.7},
			{Name: "beta", Weight: 0.3},
		},
	}
}

func TestArrivalsDeterministicAndSorted(t *testing.T) {
	in := func(i int) *tensor.Tensor { return nil }
	a := testProfile(7).Arrivals(in)
	b := testProfile(7).Arrivals(in)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].AtUS != b[i].AtUS || a[i].Tenant != b[i].Tenant {
			t.Fatalf("arrival %d differs across identical seeds", i)
		}
		if i > 0 && a[i].AtUS < a[i-1].AtUS {
			t.Fatalf("arrivals out of order at %d", i)
		}
		if a[i].AtUS >= testProfile(7).TotalUS() {
			t.Fatalf("arrival %d past the ramp end", i)
		}
	}
	c := testProfile(8).Arrivals(in)
	if len(c) == len(a) && c[0].AtUS == a[0].AtUS {
		t.Fatal("different seeds produced the same stream")
	}
}

// The Poisson process should land near the configured rate: 1000*0.1s +
// 4000*0.05s = 300 expected arrivals; allow a generous stochastic band.
func TestArrivalsMatchOfferedRate(t *testing.T) {
	a := testProfile(3).Arrivals(func(i int) *tensor.Tensor { return nil })
	if n := len(a); math.Abs(float64(n)-300) > 60 {
		t.Fatalf("got %d arrivals, expected about 300", n)
	}
	alpha := 0
	for _, ar := range a {
		if ar.Tenant == "alpha" {
			alpha++
		}
	}
	if frac := float64(alpha) / float64(len(a)); frac < 0.5 || frac > 0.9 {
		t.Fatalf("alpha fraction %.2f, expected near 0.7", frac)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		q, want float64
	}{{0.5, 20}, {0.99, 40}, {0.25, 10}, {1, 40}}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); got != c.want {
			t.Fatalf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty slice should yield 0")
	}
}
