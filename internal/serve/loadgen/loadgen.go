// Package loadgen is a deterministic open-loop synthetic load generator for
// the continuous-batching server. Open-loop means arrivals come from a
// seeded Poisson process that does not wait for responses — the honest way
// to measure a server under load (a closed-loop driver self-throttles and
// hides queueing collapse). A Profile is a QPS ramp (stages) plus a weighted
// tenant mix; the same seed always produces the same arrival stream, so
// BENCH_serve.json and the serve-smoke CI assertions are reproducible
// byte for byte.
package loadgen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Stage is one constant-rate segment of the QPS ramp.
type Stage struct {
	QPS   float64 `json:"qps"`
	DurUS float64 `json:"dur_us"`
}

// Tenant is one entry in the weighted tenant mix.
type Tenant struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// Profile is a deterministic workload description.
type Profile struct {
	Seed    int64    `json:"seed"`
	Stages  []Stage  `json:"stages"`
	Tenants []Tenant `json:"tenants"`
}

// rng is a splitmix64 stream — the same generator the fault injector uses,
// chosen for cross-platform determinism (no math/rand version drift).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float in (0,1]: never 0, so -log(u) is finite.
func (r *rng) float() float64 {
	return (float64(r.next()>>11) + 1) / float64(1<<53)
}

// Arrivals expands the profile into a time-sorted arrival stream. input(i)
// supplies the i-th request's image (callers cycle digits or seeded random
// images); inter-arrival gaps are exponential with each stage's rate.
func (p Profile) Arrivals(input func(i int) *tensor.Tensor) []serve.Arrival {
	r := &rng{s: uint64(p.Seed)*0x9e3779b97f4a7c15 + 1}
	totalW := 0.0
	for _, t := range p.Tenants {
		totalW += t.Weight
	}
	pickTenant := func() string {
		if len(p.Tenants) == 0 {
			return "default"
		}
		u := r.float() * totalW
		for _, t := range p.Tenants {
			if u <= t.Weight {
				return t.Name
			}
			u -= t.Weight
		}
		return p.Tenants[len(p.Tenants)-1].Name
	}
	var out []serve.Arrival
	base := 0.0
	i := 0
	for _, st := range p.Stages {
		end := base + st.DurUS
		if st.QPS <= 0 {
			base = end
			continue
		}
		t := base
		for {
			t += -math.Log(r.float()) / st.QPS * 1e6
			if t >= end {
				break
			}
			out = append(out, serve.Arrival{AtUS: t, Tenant: pickTenant(), Input: input(i)})
			i++
		}
		base = end
	}
	return out
}

// TotalUS is the ramp's total duration.
func (p Profile) TotalUS() float64 {
	total := 0.0
	for _, st := range p.Stages {
		total += st.DurUS
	}
	return total
}

// OfferedQPS is the ramp's average offered rate.
func (p Profile) OfferedQPS() float64 {
	total, weighted := 0.0, 0.0
	for _, st := range p.Stages {
		total += st.DurUS
		weighted += st.QPS * st.DurUS
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

// Summary aggregates one simulated run into the figures BENCH_serve.json
// reports.
type Summary struct {
	Offered      int     `json:"offered"`
	OfferedQPS   float64 `json:"offered_qps"`
	Accepted     int     `json:"accepted"`
	Completed    int     `json:"completed"`
	Canceled     int     `json:"canceled"`
	ShedCount    int     `json:"shed"`
	ShedRate     float64 `json:"shed_rate"`
	SustainedQPS float64 `json:"sustained_qps"`
	P50US        float64 `json:"p50_us"`
	P95US        float64 `json:"p95_us"`
	P99US        float64 `json:"p99_us"`
	MeanUS       float64 `json:"mean_us"`
	MaxUS        float64 `json:"max_us"`
	// BatchFill is the mean batch-fill ratio (batch size / BatchN) over
	// dispatched batches.
	BatchFill float64 `json:"batch_fill"`
	Batches   int     `json:"batches"`
	// Rungs counts completions per degradation rung; Retries/Faults are the
	// device-level events the batch engine absorbed.
	Rungs        map[string]int `json:"rungs"`
	Retries      int            `json:"retries"`
	Faults       int            `json:"faults"`
	DrainDropped int            `json:"drain_dropped"`
	MakespanUS   float64        `json:"makespan_us"`
}

// Summarize reduces a SimResult (plus the run's metrics registry, for batch
// counts and absorbed-fault totals) to a Summary.
func Summarize(p Profile, res *serve.SimResult, reg *trace.Registry) Summary {
	s := Summary{
		Offered:      res.Offered,
		OfferedQPS:   p.OfferedQPS(),
		Accepted:     res.Accepted,
		Completed:    res.Completed,
		Canceled:     res.Canceled,
		ShedCount:    len(res.Shed),
		DrainDropped: res.DrainDropped,
		MakespanUS:   res.MakespanUS,
		Rungs:        map[string]int{},
	}
	if res.Offered > 0 {
		s.ShedRate = float64(len(res.Shed)) / float64(res.Offered)
	}
	if res.MakespanUS > 0 {
		s.SustainedQPS = float64(res.Completed) / res.MakespanUS * 1e6
	}
	lat := make([]float64, 0, len(res.Responses))
	for _, r := range res.Responses {
		lat = append(lat, r.LatencyUS)
		s.Rungs[r.Rung]++
		s.MeanUS += r.LatencyUS
		if r.LatencyUS > s.MaxUS {
			s.MaxUS = r.LatencyUS
		}
	}
	if len(lat) > 0 {
		s.MeanUS /= float64(len(lat))
		sort.Float64s(lat)
		s.P50US = Percentile(lat, 0.50)
		s.P95US = Percentile(lat, 0.95)
		s.P99US = Percentile(lat, 0.99)
	}
	fill := reg.Histogram("serve.batch_fill").Snapshot()
	s.BatchFill = fill.Mean
	s.Batches = int(fill.Count)
	s.Retries = int(reg.Counter("serve.retries").Value())
	s.Faults = int(reg.Counter("serve.faults").Value())
	return s
}

// Percentile returns the q-th quantile of an ascending-sorted slice by
// nearest-rank (deterministic, no interpolation surprises).
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the summary for terminal output.
func (s Summary) String() string {
	return fmt.Sprintf(
		"offered %d (%.0f qps) accepted %d completed %d shed %d (%.1f%%) | sustained %.0f qps | p50 %.0f us p99 %.0f us | fill %.2f over %d batches | dropped %d",
		s.Offered, s.OfferedQPS, s.Accepted, s.Completed, s.ShedCount, 100*s.ShedRate,
		s.SustainedQPS, s.P50US, s.P99US, s.BatchFill, s.Batches, s.DrainDropped)
}
