// Package serve is the continuous-batching inference server: the serving
// shape on top of the batch engine (internal/host). Traffic is an open
// stream, not a fixed offline batch, so the server forms dynamic batches —
// collect up to N images or wait T simulated microseconds, whichever first —
// and feeds them to the RunBatch worker pool, amortizing the per-dispatch
// host overhead the thesis's runtime chapter (§5.2) identifies as the
// concurrent-queue bottleneck.
//
// The package splits into three pieces:
//
//   - engine.go: the single-threaded batcher state machine — per-tenant
//     admission control over bounded queues, load shedding with typed
//     reasons, batch formation, worker accounting, graceful drain. The
//     engine owns no clock and spawns no goroutines; callers drive it with
//     explicit timestamps, which is what makes the simulated path
//     deterministic.
//   - sim.go: a discrete-event frontend over a virtual microsecond clock.
//     The load generator (loadgen subpackage) produces seeded arrival
//     streams; RunSim replays them byte-deterministically, which is how
//     BENCH_serve.json and the serve-smoke CI gates stay reproducible.
//   - http.go: the wall-clock frontend behind `fpgacnn serve` — HTTP/JSON
//     ingest, /metrics, /trace and /healthz endpoints, SIGTERM drain.
//
// Failures route through a per-request degradation ladder (runner.go): the
// optimized batch first, then a solo re-run per request, then the CPU
// reference executor — one poisoned request degrades alone instead of
// failing its batchmates or the process.
package serve

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/tensor"
)

// Rung names for per-request degradation accounting (metrics
// serve.rung.<name> and the Response.Rung field).
const (
	// RungBatch: served by the optimized deployment inside a dynamic batch.
	RungBatch = "batch"
	// RungSolo: the batch attempt failed; this request was re-run alone on
	// the optimized deployment and succeeded.
	RungSolo = "solo"
	// RungCPURef: both device attempts failed; the CPU reference executor
	// served the answer (fully degraded, never wrong).
	RungCPURef = "cpuref"
)

// ShedReason classifies why a request was refused admission.
type ShedReason int

const (
	// ShedNone: the request was accepted.
	ShedNone ShedReason = iota
	// ShedTenantQueue: the request's tenant queue is full (HTTP 429 — the
	// tenant is over its share; other tenants are unaffected).
	ShedTenantQueue
	// ShedOverload: the global pending bound is reached (HTTP 503).
	ShedOverload
	// ShedDraining: the server is draining and admits nothing new (HTTP 503).
	ShedDraining
)

func (r ShedReason) String() string {
	switch r {
	case ShedNone:
		return "none"
	case ShedTenantQueue:
		return "tenant_queue"
	case ShedOverload:
		return "overload"
	case ShedDraining:
		return "draining"
	}
	return fmt.Sprintf("ShedReason(%d)", int(r))
}

// HTTPStatus maps the shed reason to the response status the HTTP frontend
// returns: 429 for per-tenant backpressure, 503 for global overload/drain.
func (r ShedReason) HTTPStatus() int {
	if r == ShedTenantQueue {
		return http.StatusTooManyRequests
	}
	return http.StatusServiceUnavailable
}

// Err returns the typed sentinel for a shed reason (nil for ShedNone).
func (r ShedReason) Err() error {
	switch r {
	case ShedTenantQueue:
		return ErrTenantQueueFull
	case ShedOverload:
		return ErrOverloaded
	case ShedDraining:
		return ErrDraining
	}
	return nil
}

// Typed admission errors; the HTTP layer maps them to 429/503 and clients
// (and tests) can errors.Is against them.
var (
	ErrTenantQueueFull = errors.New("serve: tenant queue full")
	ErrOverloaded      = errors.New("serve: server overloaded")
	ErrDraining        = errors.New("serve: server draining")
	// ErrCanceled is the response error for a request canceled while still
	// queued (client disconnect, explicit cancel event in the simulation).
	ErrCanceled = errors.New("serve: request canceled while queued")
)

// Config parameterizes a server. The zero value is NOT usable; call
// withDefaults (NewServer/RunSim do) or fill every field.
type Config struct {
	// Net/Board select the deployment (see fpgacnn list); LeNet-5 builds the
	// pipelined channel deployment, everything else the folded one.
	Net   string
	Board string
	// BatchN is the dynamic batch size bound: a batch dispatches as soon as
	// N requests are pending. Default 8.
	BatchN int
	// DeadlineUS is the batch-formation deadline in microseconds: a partial
	// batch dispatches once its oldest request has waited this long.
	// Default 500.
	DeadlineUS float64
	// Workers is the number of parallel service lanes (each runs RunBatch on
	// its own simulated device context). Default 2.
	Workers int
	// TenantQueue bounds each tenant's queued requests; excess is shed with
	// ShedTenantQueue (429). Default 64.
	TenantQueue int
	// MaxPending bounds the total pending queue across tenants; excess is
	// shed with ShedOverload (503). Default 128.
	MaxPending int
	// DispatchUS is the modeled host overhead per device dispatch
	// (clEnqueue/clFinish round trip, the per-invocation cost dynamic
	// batching amortizes). Default 150.
	DispatchUS float64
	// CPURefUS is the modeled per-image service time of the CPU reference
	// rung — the price of full degradation. Default 20000 (20 ms).
	CPURefUS float64
	// FaultSeed/FaultRate inject deterministic device faults into every
	// batch dispatch (see internal/fault). Rate 0 disables injection.
	FaultSeed int64
	FaultRate float64
}

func (c Config) withDefaults() Config {
	if c.Net == "" {
		c.Net = "lenet5"
	}
	if c.Board == "" {
		c.Board = "S10SX"
	}
	if c.BatchN <= 0 {
		c.BatchN = 8
	}
	if c.DeadlineUS <= 0 {
		c.DeadlineUS = 500
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = 64
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 128
	}
	if c.DispatchUS <= 0 {
		c.DispatchUS = 150
	}
	if c.CPURefUS <= 0 {
		c.CPURefUS = 20000
	}
	return c
}

// Request is one inference request inside the server. The engine fills ID;
// frontends fill the rest.
type Request struct {
	ID     int64
	Tenant string
	Input  *tensor.Tensor
	// ArriveUS is the admission timestamp on the frontend's clock (virtual
	// or wall microseconds since server start).
	ArriveUS float64
	// done receives the request's response exactly once (accepted requests
	// only — shed requests never enter the engine). Must not block: the HTTP
	// frontend uses a buffered channel, the simulation appends to a slice.
	done func(Response)
}

// Response is the outcome of one accepted request.
type Response struct {
	ID     int64
	Tenant string
	// ArgMax is the predicted class.
	ArgMax int
	// Rung records which ladder rung served the request (RungBatch /
	// RungSolo / RungCPURef).
	Rung string
	// BatchSize is the size of the dynamic batch this request rode in.
	BatchSize int
	// QueueUS is time from arrival to batch formation; ServiceUS from
	// formation to completion; LatencyUS the end-to-end sum.
	QueueUS   float64
	ServiceUS float64
	LatencyUS float64
	// Err is non-nil when the request failed (canceled while queued, or all
	// three ladder rungs failed).
	Err error
}

// Batch is one formed dynamic batch handed to a Runner. Seq is the
// deterministic formation sequence number (fault seeds derive from it).
type Batch struct {
	Seq      int
	Reqs     []*Request
	FormedUS float64
	Worker   int
}
