package serve

// Edge cases of the batcher state machine, driven clocklessly (explicit
// nowUS) so every timing corner is exact: deadline firing with a partial
// batch, fill at exactly N, cancellation mid-batch, drain with requests
// still queued, and shed typing. A stub runner with fixed service time keeps
// the tests about formation policy, not inference.

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

// stubRunner completes every request on the batch rung with a fixed modeled
// service time.
type stubRunner struct{ serviceUS float64 }

func (s stubRunner) Run(b *Batch) *BatchOutcome {
	out := &BatchOutcome{ServiceUS: s.serviceUS}
	for range b.Reqs {
		out.Outcomes = append(out.Outcomes, Outcome{ArgMax: 0, Rung: RungBatch})
	}
	return out
}

// testEngine builds an engine that records dispatched batches instead of
// running them.
func testEngine(cfg Config) (*engine, *[]*Batch) {
	var got []*Batch
	eng := newEngine(cfg.withDefaults(), trace.NewCollector(), func(b *Batch) { got = append(got, b) })
	return eng, &got
}

func submitOK(t *testing.T, e *engine, tenant string, nowUS float64) *Request {
	t.Helper()
	req := &Request{Tenant: tenant}
	if reason := e.submit(req, nowUS); reason != ShedNone {
		t.Fatalf("submit at %v: shed %v, want admitted", nowUS, reason)
	}
	return req
}

// A partial batch must wait for the formation deadline of its oldest
// request, then dispatch with whatever has arrived.
func TestDeadlineFiresPartialBatch(t *testing.T) {
	eng, got := testEngine(Config{BatchN: 8, DeadlineUS: 500, Workers: 1})
	submitOK(t, eng, "a", 0)
	submitOK(t, eng, "a", 10)
	submitOK(t, eng, "b", 20)
	if len(*got) != 0 {
		t.Fatalf("batch dispatched before deadline: %d", len(*got))
	}
	at, ok := eng.nextDeadline()
	if !ok || at != 500 {
		t.Fatalf("nextDeadline = %v,%v, want 500,true", at, ok)
	}
	eng.poll(499)
	if len(*got) != 0 {
		t.Fatal("batch dispatched at 499us, before the 500us deadline")
	}
	eng.poll(500)
	if len(*got) != 1 {
		t.Fatalf("got %d batches at the deadline, want 1", len(*got))
	}
	b := (*got)[0]
	if len(b.Reqs) != 3 || b.FormedUS != 500 {
		t.Fatalf("partial batch: size %d formed %v, want 3 at 500", len(b.Reqs), b.FormedUS)
	}
}

// A batch that fills to exactly N dispatches immediately on the Nth submit,
// without waiting for the deadline; the next N queue behind the busy worker
// and dispatch when it frees.
func TestBatchFillsExactlyAtN(t *testing.T) {
	eng, got := testEngine(Config{BatchN: 4, DeadlineUS: 1e6, Workers: 1})
	for i := 0; i < 3; i++ {
		submitOK(t, eng, "a", float64(i))
	}
	if len(*got) != 0 {
		t.Fatal("dispatched below N with deadline not yet reached")
	}
	submitOK(t, eng, "a", 3)
	if len(*got) != 1 || len((*got)[0].Reqs) != 4 {
		t.Fatalf("want one full batch of 4 at the Nth submit, got %d", len(*got))
	}
	if (*got)[0].FormedUS != 3 {
		t.Fatalf("formed at %v, want 3 (the Nth arrival)", (*got)[0].FormedUS)
	}
	// Worker busy: the next four queue even though they reach N.
	for i := 0; i < 4; i++ {
		submitOK(t, eng, "a", float64(10+i))
	}
	if len(*got) != 1 {
		t.Fatalf("dispatched with no free worker: %d batches", len(*got))
	}
	eng.complete((*got)[0], stubRunner{}.Run((*got)[0]), 100)
	if len(*got) != 2 || len((*got)[1].Reqs) != 4 {
		t.Fatalf("freed worker should take the queued full batch, got %d batches", len(*got))
	}
}

// Cancellation before dispatch removes the request from the batch and
// responds ErrCanceled; after dispatch it is too late and the response
// arrives normally.
func TestCancelMidBatch(t *testing.T) {
	eng, got := testEngine(Config{BatchN: 4, DeadlineUS: 500, Workers: 1})
	var resps []Response
	r1 := &Request{Tenant: "a", done: func(r Response) { resps = append(resps, r) }}
	if eng.submit(r1, 0) != ShedNone {
		t.Fatal("r1 shed")
	}
	r2 := submitOK(t, eng, "a", 10)
	if !eng.cancel(r1, 100) {
		t.Fatal("cancel of a queued request returned false")
	}
	if len(resps) != 1 || !errors.Is(resps[0].Err, ErrCanceled) {
		t.Fatalf("canceled request response = %+v, want ErrCanceled", resps)
	}
	if eng.queued["a"] != 1 {
		t.Fatalf("tenant queue count = %d after cancel, want 1", eng.queued["a"])
	}
	// Deadline now keys off r2 (the new oldest), not the canceled r1.
	if at, ok := eng.nextDeadline(); !ok || at != 510 {
		t.Fatalf("nextDeadline = %v,%v, want 510,true", at, ok)
	}
	eng.poll(510)
	if len(*got) != 1 || len((*got)[0].Reqs) != 1 || (*got)[0].Reqs[0] != r2 {
		t.Fatalf("deadline batch should hold only r2, got %+v", *got)
	}
	if eng.cancel(r2, 520) {
		t.Fatal("cancel of a dispatched request returned true")
	}
}

// Drain with requests still queued flushes them immediately as partial
// batches; everything accepted completes and nothing is dropped.
func TestDrainWithQueuedRequests(t *testing.T) {
	eng, got := testEngine(Config{BatchN: 8, DeadlineUS: 1e6, Workers: 2})
	for i := 0; i < 3; i++ {
		submitOK(t, eng, "a", float64(i))
	}
	eng.beginDrain(50)
	if len(*got) != 1 || len((*got)[0].Reqs) != 3 {
		t.Fatalf("drain should flush one partial batch of 3, got %d", len(*got))
	}
	if eng.drainDropped() != 3 {
		t.Fatalf("drainDropped mid-flight = %d, want 3 (still in flight)", eng.drainDropped())
	}
	if reason := eng.submit(&Request{Tenant: "b"}, 60); reason != ShedDraining {
		t.Fatalf("post-drain submit: %v, want ShedDraining", reason)
	}
	eng.complete((*got)[0], stubRunner{}.Run((*got)[0]), 100)
	if !eng.idle() || eng.drainDropped() != 0 {
		t.Fatalf("after completion: idle=%v dropped=%d, want true,0", eng.idle(), eng.drainDropped())
	}
	// During a drain no formation timer is needed (everything flushes).
	if _, ok := eng.nextDeadline(); ok {
		t.Fatal("nextDeadline active while draining")
	}
}

// Shed typing: per-tenant bound trips first (429), global bound trips for
// everyone (503), draining sheds everything (503).
func TestShedTyping(t *testing.T) {
	eng, _ := testEngine(Config{BatchN: 100, DeadlineUS: 1e9, Workers: 1, TenantQueue: 2, MaxPending: 3})
	submitOK(t, eng, "a", 0)
	submitOK(t, eng, "a", 1)
	if r := eng.submit(&Request{Tenant: "a"}, 2); r != ShedTenantQueue {
		t.Fatalf("3rd a: %v, want ShedTenantQueue", r)
	}
	submitOK(t, eng, "b", 3) // other tenants unaffected by a's bound
	if r := eng.submit(&Request{Tenant: "b"}, 4); r != ShedOverload {
		t.Fatalf("4th pending: %v, want ShedOverload", r)
	}
	if ShedTenantQueue.HTTPStatus() != 429 {
		t.Fatalf("tenant queue shed status = %d, want 429", ShedTenantQueue.HTTPStatus())
	}
	if ShedOverload.HTTPStatus() != 503 || ShedDraining.HTTPStatus() != 503 {
		t.Fatal("overload/draining sheds must map to 503")
	}
	m := eng.tc.Metrics()
	if m.Counter("serve.shed.tenant_queue").Value() != 1 || m.Counter("serve.shed.overload").Value() != 1 {
		t.Fatal("shed counters not typed per reason")
	}
}

// The simulated frontend: mid-stream deadlines fire, cancellations land
// before dispatch, and the end-of-stream drain flushes the tail — with the
// zero-drop ledger holding throughout.
func TestRunSimDeadlineCancelDrain(t *testing.T) {
	cfg := Config{BatchN: 8, DeadlineUS: 500, Workers: 1}
	arrivals := []Arrival{
		{AtUS: 0, Tenant: "a", CancelAtUS: 200}, // gives up while queued
		{AtUS: 100, Tenant: "a"},
		{AtUS: 2000, Tenant: "b"}, // last arrival: drain flushes it
	}
	res := RunSim(cfg, stubRunner{serviceUS: 50}, arrivals, trace.NewCollector())
	if res.Canceled != 1 || res.Completed != 2 || res.DrainDropped != 0 {
		t.Fatalf("canceled=%d completed=%d dropped=%d, want 1,2,0",
			res.Canceled, res.Completed, res.DrainDropped)
	}
	// r2's batch forms at its own 600us deadline (r1's cancellation must not
	// leave a stale 500us deadline), completing at 650.
	r2 := res.Responses[0]
	if r2.QueueUS != 500 || r2.LatencyUS != 550 {
		t.Fatalf("r2 queue=%v latency=%v, want 500,550", r2.QueueUS, r2.LatencyUS)
	}
	if r2.BatchSize != 1 {
		t.Fatalf("r2 batch size %d, want 1 (partial deadline batch)", r2.BatchSize)
	}
	// r3 arrives last, so the drain dispatches it immediately at 2000.
	r3 := res.Responses[1]
	if r3.QueueUS != 0 || r3.LatencyUS != 50 {
		t.Fatalf("r3 queue=%v latency=%v, want 0,50 (drain flush)", r3.QueueUS, r3.LatencyUS)
	}
	if res.MakespanUS != 2050 {
		t.Fatalf("makespan %v, want 2050", res.MakespanUS)
	}
}

// Determinism: the same arrivals and config replay to identical results.
func TestRunSimDeterministic(t *testing.T) {
	cfg := Config{BatchN: 4, DeadlineUS: 300, Workers: 2}
	var arrivals []Arrival
	for i := 0; i < 40; i++ {
		arrivals = append(arrivals, Arrival{AtUS: float64(i) * 37, Tenant: "t"})
	}
	a := RunSim(cfg, stubRunner{serviceUS: 120}, arrivals, trace.NewCollector())
	b := RunSim(cfg, stubRunner{serviceUS: 120}, arrivals, trace.NewCollector())
	if a.Completed != b.Completed || a.MakespanUS != b.MakespanUS || len(a.Responses) != len(b.Responses) {
		t.Fatalf("sim not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Responses {
		if a.Responses[i].LatencyUS != b.Responses[i].LatencyUS || a.Responses[i].ID != b.Responses[i].ID {
			t.Fatalf("response %d differs across identical runs", i)
		}
	}
}
