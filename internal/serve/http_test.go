package serve

// Wall-clock server tests, run under -race by the Makefile's race target:
// concurrent tenants racing for the last admission slot, and a graceful
// drain with a request still queued. These go through the real LeNet-5
// deployment, so they double as an end-to-end check of the ladder runner.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
)

// Two tenants fire bursts at a server with one slot per tenant and two
// global slots: admission must never exceed either bound, every accepted
// request must complete, and the ledger offered = accepted + shed must hold.
func TestConcurrentTenantsRaceForLastSlot(t *testing.T) {
	cfg := Config{
		Net: "lenet5", Board: "S10SX", Workers: 1,
		BatchN: 100, DeadlineUS: 60e6, // nothing dispatches until the drain
		TenantQueue: 1, MaxPending: 2,
	}
	s, err := NewServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	const perTenant = 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := map[string]int{}
	shed := map[ShedReason]int{}
	var chans []<-chan Response
	for _, tenant := range []string{"alpha", "beta"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string, i int) {
				defer wg.Done()
				ch, reason := s.Submit(&Request{Tenant: tenant, Input: nn.Digit(i % 10)})
				mu.Lock()
				defer mu.Unlock()
				if reason == ShedNone {
					accepted[tenant]++
					chans = append(chans, ch)
				} else {
					shed[reason]++
				}
			}(tenant, i)
		}
	}
	wg.Wait()
	total := accepted["alpha"] + accepted["beta"]
	if accepted["alpha"] > 1 || accepted["beta"] > 1 || total > cfg.MaxPending {
		t.Fatalf("admission over bounds: %v (max pending %d)", accepted, cfg.MaxPending)
	}
	if total+shed[ShedTenantQueue]+shed[ShedOverload] != 2*perTenant {
		t.Fatalf("ledger broken: accepted %d shed %v, offered %d", total, shed, 2*perTenant)
	}
	// Drain flushes the queued partial batch; every accepted request responds.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("accepted request failed: %v", resp.Err)
			}
		default:
			t.Fatal("accepted request dropped by drain (no response)")
		}
	}
	if got := s.Metrics().Gauge("serve.drain.dropped").Value(); got != 0 {
		t.Fatalf("serve.drain.dropped = %v, want 0", got)
	}
}

// A request queued behind a long formation deadline must survive a drain
// that begins while it waits, and the server must refuse work afterwards.
func TestHTTPDrainWithQueuedRequest(t *testing.T) {
	cfg := Config{
		Net: "lenet5", Board: "S10SX", Workers: 2,
		BatchN: 8, DeadlineUS: 60e6,
	}
	s, err := NewServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json",
			strings.NewReader(`{"tenant":"alpha","digit":3}`))
		if err != nil {
			done <- err
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- &http.ProtocolError{ErrorString: "status " + resp.Status}
			return
		}
		done <- nil
	}()
	// Wait until the request is actually queued before draining.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s.Metrics().Counter("serve.accepted").Value() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("queued request did not survive the drain: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json",
		strings.NewReader(`{"tenant":"alpha","digit":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain POST: %s, want 503", resp.Status)
	}
}
