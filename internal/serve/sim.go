package serve

// Discrete-event frontend: replays an arrival stream against the engine on a
// virtual microsecond clock. Service time is the runner's modeled ServiceUS
// (device time + dispatch overhead), so throughput and latency figures are
// properties of the modeled system, not of the host CPU — the same
// discipline as the batch engine's modeled speedups — and a fixed
// (profile seed, fault seed) pair replays byte-identically. Functional
// outputs are still really computed (every request classifies its image),
// so fault injection exercises the true ladder.

import (
	"container/heap"
	"sort"

	"repro/internal/tensor"
	"repro/internal/trace"
)

// Arrival is one scheduled request in a simulated workload.
type Arrival struct {
	AtUS   float64
	Tenant string
	Input  *tensor.Tensor
	// CancelAtUS > 0 cancels the request at that time if it is still queued
	// (a client giving up / disconnecting).
	CancelAtUS float64
}

// ShedRecord is one refused admission in a simulated run.
type ShedRecord struct {
	Tenant string
	Reason ShedReason
	AtUS   float64
}

// SimResult is the outcome of one simulated serving run.
type SimResult struct {
	Offered   int
	Accepted  int
	Completed int
	Canceled  int
	Shed      []ShedRecord
	// Responses holds every completed (non-canceled) response in completion
	// order.
	Responses []Response
	// MakespanUS is the time of the last completion — the denominator for
	// sustained QPS.
	MakespanUS float64
	// DrainDropped is the zero-drop contract check: accepted requests that
	// neither completed nor were canceled. Always 0 unless the engine is
	// broken; serve-smoke blocks on it.
	DrainDropped int
}

// completion is a scheduled batch-finish event.
type completion struct {
	atUS float64
	b    *Batch
	out  *BatchOutcome
}

// completionHeap orders completions by time, then by formation sequence so
// simultaneous finishes retire deterministically.
type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].atUS != h[j].atUS {
		return h[i].atUS < h[j].atUS
	}
	return h[i].b.Seq < h[j].b.Seq
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// cancelEvent is a scheduled give-up for a still-queued request.
type cancelEvent struct {
	atUS float64
	req  *Request
}

// Event-source tags; priority at equal timestamps is this order, which fixes
// the tie-break (a completion frees its worker before a deadline flushes a
// partial batch at the same instant; arrivals see the post-event state).
const (
	evNone = iota
	evCompletion
	evCancel
	evDeadline
	evArrival
)

// RunSim drives the engine with the given arrivals and drains after the last
// one, returning once everything accepted has completed. Fully
// deterministic: virtual time only, fixed tie-break order, batches executed
// in formation order.
func RunSim(cfg Config, r Runner, arrivals []Arrival, tc *trace.Collector) *SimResult {
	cfg = cfg.withDefaults()
	res := &SimResult{Offered: len(arrivals)}
	sorted := make([]Arrival, len(arrivals))
	copy(sorted, arrivals)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].AtUS < sorted[j].AtUS })

	comps := &completionHeap{}
	eng := newEngine(cfg, tc, nil)
	// Dispatch runs the batch functionally right away (virtual time is not
	// wall time) and schedules its completion at formation + modeled service.
	eng.dispatch = func(b *Batch) {
		out := r.Run(b)
		heap.Push(comps, completion{atUS: b.FormedUS + out.ServiceUS, b: b, out: out})
	}

	var cancels []cancelEvent
	earliestCancel := func() (int, float64) {
		idx, at := -1, 0.0
		for i, c := range cancels {
			if idx < 0 || c.atUS < at {
				idx, at = i, c.atUS
			}
		}
		return idx, at
	}

	now := 0.0
	ai := 0
	drained := false
	for {
		kind, at := evNone, 0.0
		consider := func(k int, t float64, ok bool) {
			if ok && (kind == evNone || t < at) {
				kind, at = k, t
			}
		}
		if comps.Len() > 0 {
			consider(evCompletion, (*comps)[0].atUS, true)
		}
		if ci, ct := earliestCancel(); ci >= 0 {
			consider(evCancel, ct, true)
		}
		if dl, ok := eng.nextDeadline(); ok {
			consider(evDeadline, dl, true)
		}
		if ai < len(sorted) {
			consider(evArrival, sorted[ai].AtUS, true)
		}

		if kind == evNone {
			if !drained {
				// No arrivals left and nothing scheduled: flush any partial
				// batch still waiting on its deadline and keep going.
				eng.beginDrain(now)
				drained = true
				continue
			}
			break
		}
		now = at
		switch kind {
		case evCompletion:
			c := heap.Pop(comps).(completion)
			eng.complete(c.b, c.out, c.atUS)
			if c.atUS > res.MakespanUS {
				res.MakespanUS = c.atUS
			}
		case evCancel:
			i, _ := earliestCancel()
			ev := cancels[i]
			cancels = append(cancels[:i], cancels[i+1:]...)
			eng.cancel(ev.req, ev.atUS)
		case evDeadline:
			eng.poll(now)
		case evArrival:
			a := sorted[ai]
			ai++
			req := &Request{Tenant: a.Tenant, Input: a.Input}
			req.done = func(resp Response) {
				if resp.Err == ErrCanceled {
					res.Canceled++
					return
				}
				res.Completed++
				res.Responses = append(res.Responses, resp)
			}
			if reason := eng.submit(req, a.AtUS); reason != ShedNone {
				res.Shed = append(res.Shed, ShedRecord{Tenant: a.Tenant, Reason: reason, AtUS: a.AtUS})
			} else if a.CancelAtUS > a.AtUS {
				cancels = append(cancels, cancelEvent{atUS: a.CancelAtUS, req: req})
			}
			if ai == len(sorted) {
				// Stream over: drain so queued partials flush instead of
				// waiting out their deadlines.
				eng.beginDrain(now)
				drained = true
			}
		}
	}
	res.Accepted = int(eng.accepted)
	res.DrainDropped = res.Accepted - res.Completed - res.Canceled
	return res
}
