package serve

// Wall-clock frontend: the long-running process behind `fpgacnn serve`.
// HTTP/JSON ingest on /v1/infer, live observability on /metrics and /trace,
// graceful drain on SIGTERM (the cmd layer wires the signal). The engine is
// shared with the simulated frontend and serialized under one mutex; batch
// execution happens on a pool of worker goroutines, one per engine worker
// slot, so the mutex is never held across an inference.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// FrontendRunner is what the wall-clock frontend needs from a runner: batch
// execution plus the input shape for /v1/infer payload validation. The
// ladder runner and the fleet runner both satisfy it.
type FrontendRunner interface {
	Runner
	InShape() []int
	InputLen() int
}

// Server is the wall-clock continuous-batching server.
type Server struct {
	cfg    Config
	runner FrontendRunner
	tc     *trace.Collector
	start  time.Time

	mu       sync.Mutex
	eng      *engine
	timer    *time.Timer
	batchCh  chan *Batch
	chClosed bool
	wg       sync.WaitGroup

	drainOnce sync.Once
	idleOnce  sync.Once
	idleCh    chan struct{} // closed when a drain reaches the idle state
}

// NewServer builds the ladder deployment and starts the worker pool. Callers
// serve s.Handler() and must Drain before exit.
func NewServer(cfg Config, tc *trace.Collector) (*Server, error) {
	cfg = cfg.withDefaults()
	if tc == nil {
		tc = trace.NewCollector()
	}
	runner, err := NewLadderRunner(cfg, tc)
	if err != nil {
		return nil, err
	}
	return NewServerWithRunner(cfg, runner, tc)
}

// NewServerWithRunner starts the worker pool over a caller-built runner (the
// fleet layer injects its scheduler here).
func NewServerWithRunner(cfg Config, runner FrontendRunner, tc *trace.Collector) (*Server, error) {
	cfg = cfg.withDefaults()
	if tc == nil {
		tc = trace.NewCollector()
	}
	s := &Server{
		cfg:    cfg,
		runner: runner,
		tc:     tc,
		start:  time.Now(),
		idleCh: make(chan struct{}),
		// Capacity Workers: the engine dispatches only with a reserved
		// worker slot, so sends never block while the mutex is held.
		batchCh: make(chan *Batch, cfg.Workers),
	}
	s.eng = newEngine(cfg, tc, func(b *Batch) { s.batchCh <- b })
	s.timer = time.AfterFunc(time.Hour, s.onDeadline)
	s.timer.Stop()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(s.batchCh)
	}
	return s, nil
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Metrics returns the server's registry (the /metrics endpoint's source).
func (s *Server) Metrics() *trace.Registry { return s.tc.Metrics() }

func (s *Server) nowUS() float64 { return float64(time.Since(s.start)) / float64(time.Microsecond) }

// worker executes dispatched batches outside the engine lock. The channel is
// captured at spawn so the drain path never races a field read.
func (s *Server) worker(batches <-chan *Batch) {
	defer s.wg.Done()
	for b := range batches {
		out := s.runner.Run(b)
		s.mu.Lock()
		s.eng.complete(b, out, s.nowUS())
		s.rearmTimerLocked()
		s.signalIdleLocked()
		s.mu.Unlock()
	}
}

// onDeadline fires when the oldest partial batch's formation deadline
// expires.
func (s *Server) onDeadline() {
	s.mu.Lock()
	s.eng.poll(s.nowUS())
	s.rearmTimerLocked()
	s.mu.Unlock()
}

// rearmTimerLocked points the formation timer at the engine's next deadline.
func (s *Server) rearmTimerLocked() {
	s.timer.Stop()
	if at, ok := s.eng.nextDeadline(); ok {
		d := time.Duration((at - s.nowUS()) * float64(time.Microsecond))
		if d < 0 {
			d = 0
		}
		s.timer.Reset(d)
	}
}

func (s *Server) signalIdleLocked() {
	if s.eng.draining && s.eng.idle() {
		s.idleOnce.Do(func() { close(s.idleCh) })
	}
}

// Submit admits one request and returns a channel carrying its response, or
// the shed reason. Exposed for in-process callers (tests, smoke drivers);
// the HTTP handler goes through it too.
func (s *Server) Submit(req *Request) (<-chan Response, ShedReason) {
	ch := make(chan Response, 1)
	req.done = func(r Response) { ch <- r }
	s.mu.Lock()
	reason := s.eng.submit(req, s.nowUS())
	s.rearmTimerLocked()
	s.mu.Unlock()
	if reason != ShedNone {
		return nil, reason
	}
	return ch, ShedNone
}

// Cancel withdraws a still-queued request (client disconnect). Returns false
// when it already dispatched — its response will still arrive.
func (s *Server) Cancel(req *Request) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.eng.cancel(req, s.nowUS())
	s.signalIdleLocked()
	return ok
}

// Drain stops admission, flushes partial batches, waits for in-flight work
// (bounded by ctx) and stops the worker pool. The zero-drop contract: every
// request accepted before Drain gets its response. Safe to call once;
// subsequent calls wait on the same drain.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.eng.beginDrain(s.nowUS())
		s.signalIdleLocked()
		s.mu.Unlock()
	})
	select {
	case <-s.idleCh:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with %d request(s) outstanding: %w",
			s.outstanding(), ctx.Err())
	}
	s.mu.Lock()
	if !s.chClosed {
		// Safe: the engine is idle and draining, so no further dispatch can
		// send; the mutex serializes this close against any late send.
		s.chClosed = true
		close(s.batchCh)
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.tc.Metrics().Counter("serve.drain.completed").Inc()
	s.tc.Metrics().Gauge("serve.drain.dropped").Set(float64(s.outstanding()))
	return nil
}

func (s *Server) outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.eng.pending) + s.eng.inflight
}

// Draining reports whether the server has begun (or finished) draining.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.draining
}

// inferPayload is the /v1/infer request body: a tenant plus either an MNIST
// digit (LeNet-5 convenience) or a flat image of the deployment's input
// shape.
type inferPayload struct {
	Tenant string    `json:"tenant"`
	Digit  *int      `json:"digit,omitempty"`
	Image  []float32 `json:"image,omitempty"`
}

// inferReply is the /v1/infer response body.
type inferReply struct {
	ID        int64   `json:"id"`
	Tenant    string  `json:"tenant"`
	ArgMax    int     `json:"argmax"`
	Rung      string  `json:"rung"`
	BatchSize int     `json:"batch_size"`
	QueueUS   float64 `json:"queue_us"`
	LatencyUS float64 `json:"latency_us"`
}

type errorReply struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

// Handler returns the server's HTTP mux: POST /v1/infer, GET /metrics
// (?format=json for JSON), GET /trace (Chrome trace), GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	var p inferPayload
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&p); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "bad JSON: " + err.Error(), Reason: "bad_request"})
		return
	}
	if p.Tenant == "" {
		p.Tenant = "default"
	}
	var input *tensor.Tensor
	switch {
	case p.Digit != nil:
		if s.cfg.Net != "lenet5" {
			writeJSON(w, http.StatusBadRequest, errorReply{Error: "digit payloads are lenet5-only", Reason: "bad_request"})
			return
		}
		if *p.Digit < 0 || *p.Digit > 9 {
			writeJSON(w, http.StatusBadRequest, errorReply{Error: "digit must be 0..9", Reason: "bad_request"})
			return
		}
		input = nn.Digit(*p.Digit)
	case p.Image != nil:
		if len(p.Image) != s.runner.InputLen() {
			writeJSON(w, http.StatusBadRequest, errorReply{
				Error:  fmt.Sprintf("image must have %d elements for shape %v, got %d", s.runner.InputLen(), s.runner.InShape(), len(p.Image)),
				Reason: "bad_request",
			})
			return
		}
		input = tensor.New(s.runner.InShape()...)
		copy(input.Data, p.Image)
	default:
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "payload needs \"digit\" or \"image\"", Reason: "bad_request"})
		return
	}

	req := &Request{Tenant: p.Tenant, Input: input}
	ch, reason := s.Submit(req)
	if reason != ShedNone {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, reason.HTTPStatus(), errorReply{Error: reason.Err().Error(), Reason: reason.String()})
		return
	}
	select {
	case resp := <-ch:
		if resp.Err != nil {
			writeJSON(w, http.StatusInternalServerError, errorReply{Error: resp.Err.Error(), Reason: "inference_failed"})
			return
		}
		writeJSON(w, http.StatusOK, inferReply{
			ID: resp.ID, Tenant: resp.Tenant, ArgMax: resp.ArgMax, Rung: resp.Rung,
			BatchSize: resp.BatchSize, QueueUS: resp.QueueUS, LatencyUS: resp.LatencyUS,
		})
	case <-r.Context().Done():
		if !s.Cancel(req) {
			// Already dispatched: drain the response so done never blocks a
			// GC'd channel (buffered anyway, but keep the accounting exact).
			<-ch
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		buf, err := s.tc.Metrics().DumpJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.tc.Metrics().DumpText())
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.tc.WriteChromeTrace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// HealthReply is the /healthz body: overall status, drain state, and one
// entry per runner device when the runner reports health (HealthReporter).
type HealthReply struct {
	Status      string         `json:"status"` // "ok", "degraded" or "draining"
	Draining    bool           `json:"draining"`
	Outstanding int            `json:"outstanding"`
	Runners     []DeviceHealth `json:"runners,omitempty"`
}

// Health assembles the current health report (the /healthz body). Exposed
// for in-process smoke drivers.
func (s *Server) Health() HealthReply {
	rep := HealthReply{Status: "ok", Draining: s.Draining(), Outstanding: s.outstanding()}
	if hr, ok := s.runner.(HealthReporter); ok {
		rep.Runners = hr.RunnerHealth()
		healthy := 0
		for _, d := range rep.Runners {
			if d.State == "healthy" || d.State == "suspect" {
				healthy++
			}
		}
		if healthy < len(rep.Runners) {
			// Some device is down but the fleet still serves (cpuref is the
			// floor): degraded, not unavailable.
			rep.Status = "degraded"
		}
	}
	if rep.Draining {
		rep.Status = "draining"
	}
	return rep
}

// handleHealthz reports readiness: 200 with a JSON body while serving
// (including degraded fleets — cpuref still answers), 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rep := s.Health()
	status := http.StatusOK
	if rep.Draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Serve runs the HTTP server on ln until ctx is canceled, then drains
// gracefully (zero dropped in-flight requests) and shuts the listener down.
// The cmd layer passes a signal-bound context for SIGTERM/SIGINT handling.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		hs.Close()
		return err
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	return hs.Shutdown(shutCtx)
}
