package serve

// Batch execution with per-request degradation. The server's ladder reuses
// the PR 2 idea (optimized first, fall toward cpuref, record every step) but
// applies it per request instead of per process: when a dynamic batch fails
// on the optimized deployment (injected device faults that survive the batch
// engine's own bounded retries), each rider is re-run alone on the
// deployment — isolating the poisoned request — and only requests that fail
// solo too degrade to the CPU reference executor, which, as in host's
// RunLadder, can always serve the answer.

import (
	"fmt"
	"sync/atomic"

	"repro/internal/aoc"
	"repro/internal/bench"
	"repro/internal/fpga"
	"repro/internal/host"
	"repro/internal/nn"
	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Outcome is one request's result inside a batch outcome.
type Outcome struct {
	ArgMax int
	Rung   string
	Err    error
}

// BatchOutcome is what a Runner returns for one dispatched batch.
type BatchOutcome struct {
	// Outcomes aligns 1:1 with Batch.Reqs.
	Outcomes []Outcome
	// ServiceUS is the batch's total modeled service time on the virtual
	// clock: dispatch overhead(s) plus device time plus any degraded-rung
	// cost. The wall-clock frontend ignores it (real time elapses instead).
	ServiceUS float64
	// DeviceUS is the modeled device portion (no dispatch overhead).
	DeviceUS float64
	// Retries/Faults aggregate what the batch engine absorbed; Degraded
	// counts requests that left the batch rung.
	Retries  int
	Faults   int
	Degraded int
}

// Runner executes formed batches. Implementations must be safe for
// concurrent Run calls (the HTTP frontend's workers run in parallel).
type Runner interface {
	Run(b *Batch) *BatchOutcome
}

// Deployment is the slice of the host engine a runner executes on; both
// deployment shapes (Pipelined, Folded) satisfy it. Exported so external
// runners (internal/fleet) build per-device deployments through the same
// path the ladder uses.
type Deployment interface {
	Infer(*tensor.Tensor) (*tensor.Tensor, error)
	RunBatch([]*tensor.Tensor, host.BatchOptions) (*host.BatchResult, error)
}

// BuildDeployment builds the deployment for net on board — the pipelined
// channel design for LeNet-5, the folded single-CU design otherwise — and
// returns it with the lowered reference layer chain (the cpuref ground
// truth).
func BuildDeployment(net string, board *fpga.Board) (Deployment, []*relay.Layer, error) {
	g, err := nn.ByName(net)
	if err != nil {
		return nil, nil, err
	}
	layers, err := relay.Lower(g)
	if err != nil {
		return nil, nil, err
	}
	if net == "lenet5" {
		p, err := host.BuildPipelined(layers, host.PipeTVMAutorun, board, aoc.DefaultOptions)
		if err != nil {
			return nil, nil, err
		}
		return p, layers, nil
	}
	fcfg, err := bench.FoldedConfigFor(net, board)
	if err != nil {
		return nil, nil, err
	}
	f, err := host.BuildFolded(layers, fcfg, board, aoc.DefaultOptions)
	if err != nil {
		return nil, nil, err
	}
	return f, layers, nil
}

// DeviceHealth is one runner- or device-level health entry reported by
// /healthz. The ladder runner reports a single entry; the fleet runner
// reports one per board plus the cpuref tier.
type DeviceHealth struct {
	Name  string `json:"name"`
	Board string `json:"board,omitempty"`
	// State is the device health state ("healthy", "suspect", "dead",
	// "recovering"); single-device runners are always "healthy" while up.
	State string `json:"state"`
	// BacklogUS is the modeled queue depth in time units: how far in the
	// future the device's next free slot is.
	BacklogUS float64 `json:"backlog_us"`
	// Served counts images this device answered; FailoversIn/Out count
	// images rerouted to / away from it.
	Served       int `json:"served"`
	FailoversIn  int `json:"failovers_in,omitempty"`
	FailoversOut int `json:"failovers_out,omitempty"`
}

// HealthReporter is implemented by runners that can describe per-device
// health; /healthz includes the entries when the server's runner provides
// them.
type HealthReporter interface {
	RunnerHealth() []DeviceHealth
}

// LadderRunner runs batches on a built deployment with the per-request
// degradation ladder. Safe for concurrent use.
type LadderRunner struct {
	cfg    Config
	dep    Deployment
	layers []*relay.Layer
	tc     *trace.Collector
	inLen  int
	// soloSeq decorrelates solo re-run fault seeds from the failed batch
	// attempt (transient hardware faults are time-dependent; replaying the
	// identical seed would poison the retry forever).
	soloSeq atomic.Int64
	served  atomic.Int64
}

// RunnerHealth reports the ladder's single device: always healthy while the
// process is up (device faults degrade requests, never the deployment).
func (r *LadderRunner) RunnerHealth() []DeviceHealth {
	return []DeviceHealth{{
		Name:   "ladder",
		Board:  r.cfg.Board,
		State:  "healthy",
		Served: int(r.served.Load()),
	}}
}

// NewLadderRunner builds the deployment for cfg.Net/cfg.Board (pipelined for
// LeNet-5, folded otherwise) and the reference layer chain for the cpuref
// rung.
func NewLadderRunner(cfg Config, tc *trace.Collector) (*LadderRunner, error) {
	cfg = cfg.withDefaults()
	board, err := fpga.ByName(cfg.Board)
	if err != nil {
		return nil, err
	}
	dep, layers, err := BuildDeployment(cfg.Net, board)
	if err != nil {
		return nil, err
	}
	inLen := 1
	for _, d := range layers[0].InShape {
		inLen *= d
	}
	return &LadderRunner{cfg: cfg, dep: dep, layers: layers, tc: tc, inLen: inLen}, nil
}

// Config returns the runner's effective (defaulted) configuration.
func (r *LadderRunner) Config() Config { return r.cfg }

// InShape returns the deployment's input shape (the HTTP frontend validates
// payload lengths against it).
func (r *LadderRunner) InShape() []int { return r.layers[0].InShape }

// InputLen returns the flat input element count.
func (r *LadderRunner) InputLen() int { return r.inLen }

// Reference runs the CPU reference executor on one input — the ground truth
// every rung must match.
func (r *LadderRunner) Reference(in *tensor.Tensor) (*tensor.Tensor, error) {
	return relay.Execute(r.layers, in)
}

// Run executes one batch through the ladder. The fault seed derives from the
// batch's deterministic formation sequence number, so a simulated run
// injects the same faults every time.
func (r *LadderRunner) Run(b *Batch) *BatchOutcome {
	r.served.Add(int64(len(b.Reqs)))
	out := &BatchOutcome{Outcomes: make([]Outcome, len(b.Reqs))}
	inputs := make([]*tensor.Tensor, len(b.Reqs))
	for i, req := range b.Reqs {
		inputs[i] = req.Input
	}
	res, err := r.dep.RunBatch(inputs, host.BatchOptions{
		Workers:   1,
		FaultSeed: r.cfg.FaultSeed + int64(b.Seq)*9973,
		FaultRate: r.cfg.FaultRate,
	})
	out.ServiceUS = r.cfg.DispatchUS
	if err == nil {
		for i := range b.Reqs {
			out.Outcomes[i] = Outcome{ArgMax: res.Outputs[i].ArgMax(), Rung: RungBatch}
		}
		out.DeviceUS = res.ModeledUS
		out.ServiceUS += res.ModeledUS
		out.Retries = res.Retries
		out.Faults = len(res.Faults)
		return out
	}
	// Batch rung failed: isolate the poison. Each rider re-runs alone with a
	// fresh fault seed; survivors stay on the optimized deployment.
	for i, req := range b.Reqs {
		out.Degraded++
		out.ServiceUS += r.cfg.DispatchUS
		solo, serr := r.dep.RunBatch(inputs[i:i+1], host.BatchOptions{
			Workers:   1,
			FaultSeed: r.cfg.FaultSeed + 1_000_003*(r.soloSeq.Add(1)),
			FaultRate: r.cfg.FaultRate,
		})
		if serr == nil {
			out.Outcomes[i] = Outcome{ArgMax: solo.Outputs[0].ArgMax(), Rung: RungSolo}
			out.DeviceUS += solo.ModeledUS
			out.ServiceUS += solo.ModeledUS
			out.Retries += solo.Retries
			out.Faults += len(solo.Faults)
			continue
		}
		want, rerr := r.Reference(req.Input)
		if rerr != nil {
			out.Outcomes[i] = Outcome{ArgMax: -1, Rung: RungCPURef,
				Err: fmt.Errorf("serve: request %d failed every rung: %w", req.ID, rerr)}
			continue
		}
		out.Outcomes[i] = Outcome{ArgMax: want.ArgMax(), Rung: RungCPURef}
		out.ServiceUS += r.cfg.CPURefUS
	}
	return out
}
